"""Queue/worker telemetry: counters files, status enrichment, queue top."""

from __future__ import annotations

import os
import time

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.scheduler.monitor import (
    format_queue_top,
    queue_status,
    queue_top,
)
from repro.scheduler.queue import WorkQueue
from repro.scheduler.worker import QueueWorker
from repro.sweeps.spec import SweepSpec
from repro.telemetry.registry import telemetry_session

TTL = 30.0


def spec(seeds=(1,)) -> SweepSpec:
    return SweepSpec(
        name="telemetry-unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb",),
        seeds=seeds,
        scale="tiny",
    )


def executor_for(path) -> ExperimentExecutor:
    return ExperimentExecutor(workers=1, store=ResultStore(path))


class TestWorkerCounters:
    def test_drained_worker_leaves_a_counters_file(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        QueueWorker(
            queue, executor=executor_for(tmp_path / "s"), owner="w", ttl=TTL
        ).run()
        counters = queue.worker_counters()
        assert set(counters) == {"w"}
        record = counters["w"]
        assert record["owner"] == "w"
        assert record["pid"] == os.getpid()
        assert record["processed"] == 1
        assert record["simulated"] == 1
        assert record["store_hits"] == 0
        assert record["failed"] == 0
        assert record["busy_s"] > 0
        assert record["last_job_s"] > 0
        assert record["last_job_id"]

    def test_counters_written_without_telemetry_enabled(self, tmp_path):
        # The dashboard must work on fleets that never pass --telemetry.
        queue = WorkQueue.init(tmp_path / "q", spec())
        QueueWorker(
            queue, executor=executor_for(tmp_path / "s"), owner="w", ttl=TTL
        ).run()
        assert queue.counters_dir.is_dir()
        assert "w" in queue.worker_counters()

    def test_gc_prunes_counters_with_stale_heartbeats(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue.heartbeat("dead", TTL, now=0.0)
        queue.write_worker_counters("dead", {"owner": "dead"})
        old = time.time() - 10_000.0
        heartbeat = queue.heartbeats_dir / "dead.json"
        os.utime(heartbeat, (old, old))
        report = queue.gc(prune=True, heartbeat_grace=60.0)
        assert "dead" in report.stale_heartbeats
        assert queue.worker_counters() == {}


class TestQueueStatusEnrichment:
    def test_worker_rows_carry_staleness_and_counters(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue.heartbeat("alive", TTL, now=1000.0)
        queue.heartbeat("stale", TTL, now=0.0)
        queue.write_worker_counters("alive", {"processed": 3})
        status = queue_status(queue, now=1000.0 + TTL / 2.0)
        by_owner = {w["owner"]: w for w in status["workers"]}
        assert not by_owner["alive"]["stale"]
        assert by_owner["alive"]["heartbeat_age_s"] == TTL / 2.0
        assert by_owner["alive"]["counters"] == {"processed": 3}
        # Stale workers are flagged, never silently dropped.
        assert by_owner["stale"]["stale"]
        assert by_owner["stale"]["counters"] is None


class TestQueueTop:
    def test_frame_shape_mid_drain(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec(seeds=(1, 2)))
        queue.claim("w", TTL, now=1000.0)
        frame = queue_top(queue, now=1000.0)
        assert frame["time"] == 1000.0
        assert frame["status"]["counts"]["leased"] == 1
        [lease] = frame["lease_ages"]
        assert lease["owner"] == "w"
        assert lease["age_s"] >= 0.0
        [worker] = frame["status"]["workers"]
        assert worker["jobs_per_min"] is None  # no counters yet

    def test_rate_from_frame_delta(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue.heartbeat("w", TTL, now=1000.0)
        queue.write_worker_counters("w", {"processed": 10, "busy_s": 60.0})
        previous = queue_top(queue, now=1000.0)
        queue.write_worker_counters("w", {"processed": 16, "busy_s": 90.0})
        queue.heartbeat("w", TTL, now=1030.0)
        frame = queue_top(queue, now=1030.0, previous=previous)
        [worker] = frame["status"]["workers"]
        # 6 jobs over 30 s → 12 jobs/min from the delta, not the
        # session average (16 / 90 s × 60 ≈ 10.7).
        assert worker["jobs_per_min"] == 12.0

    def test_single_frame_falls_back_to_session_average(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue.heartbeat("w", TTL, now=1000.0)
        queue.write_worker_counters("w", {"processed": 10, "busy_s": 120.0})
        [worker] = queue_top(queue, now=1000.0)["status"]["workers"]
        assert worker["jobs_per_min"] == 5.0

    def test_retired_workers_survive_as_counters_only_rows(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        QueueWorker(
            queue, executor=executor_for(tmp_path / "s"), owner="w", ttl=TTL
        ).run()
        # Clean exit removed the heartbeat but kept the counters file.
        assert queue.heartbeats() == []
        frame = queue_top(queue)
        [worker] = frame["status"]["workers"]
        assert worker["owner"] == "w"
        assert worker["retired"]
        assert not worker["alive"]
        assert worker["counters"]["processed"] == 1

    def test_human_rendering_smoke(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec(seeds=(1, 2)))
        queue.claim("w", TTL, now=1000.0)
        queue.write_worker_counters(
            "w",
            {"processed": 4, "simulated": 3, "store_hits": 1,
             "failed": 0, "busy_s": 10.0, "last_job_s": 2.5},
        )
        text = format_queue_top(queue_top(queue, now=1000.0))
        assert "telemetry-unit" in text
        assert "pending: 1" in text
        assert "oldest leases:" in text
        assert "2.5s" in text

    def test_drained_render_and_fresh_queue_render(self, tmp_path):
        fresh = WorkQueue.init(tmp_path / "fresh", spec())
        assert "no workers on record" in format_queue_top(queue_top(fresh))
        queue = WorkQueue.init(tmp_path / "q", spec())
        lease = queue.claim("w", TTL)
        queue.ack(lease, "simulated", duration_s=1.0)
        text = format_queue_top(queue_top(queue))
        assert "[drained]" in text


class TestQueueProtocolEvents:
    def test_claim_ack_events_and_counters(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        with telemetry_session() as telemetry:
            lease = queue.claim("w", TTL, now=1000.0)
            queue.heartbeat("w", TTL, now=1001.0)
            queue.ack(lease, "simulated", duration_s=1.0)
        assert telemetry.counters["queue.claim"] == 1
        assert telemetry.counters["queue.ack"] == 1
        # claim() renews the owner's heartbeat internally, so the count
        # reflects every renewal, not just the explicit call.
        assert telemetry.counters["queue.heartbeat"] >= 1
        kinds = [
            (event["kind"], event["name"]) for event in telemetry.events
        ]
        assert ("queue", "claim") in kinds
        assert ("queue", "ack") in kinds
        # Heartbeats are counted but deliberately not event-recorded.
        assert ("queue", "heartbeat") not in kinds

    def test_expiry_event_on_scavenge(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue.claim("dead", TTL, now=0.0)
        with telemetry_session() as telemetry:
            requeued = queue.requeue_expired(now=TTL * 10)
        assert len(requeued) == 1
        assert telemetry.counters["queue.expiry"] == 1
        assert any(
            event["name"] == "expiry" for event in telemetry.events
        )

    def test_disabled_telemetry_records_nothing(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        lease = queue.claim("w", TTL)  # no active registry: just works
        queue.ack(lease, "simulated", duration_s=1.0)
        assert queue.counts().done == 1
