"""Tests for the durable work queue: leasing, expiry, requeue."""

from __future__ import annotations

import json

import pytest

from repro.scheduler.queue import QueueCounts, WorkQueue, job_id
from repro.sweeps.spec import SweepSpec

TTL = 30.0


def spec() -> SweepSpec:
    return SweepSpec(
        name="unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb", "capacity"),
        seeds=(1, 2),
        scale="tiny",
    )


@pytest.fixture
def queue(tmp_path) -> WorkQueue:
    return WorkQueue.init(tmp_path / "q", spec())


class TestInit:
    def test_layout_and_full_grid(self, queue):
        counts = queue.counts()
        assert counts == QueueCounts(jobs=4, pending=4, leased=0, done=0)
        assert not counts.drained
        assert queue.name == "unit"
        assert queue.spec == spec()
        assert queue.spec_hash == spec().spec_hash()
        jobs = queue.jobs()
        assert len(jobs) == 4
        assert {(j.scenario, j.method, j.seed) for j in jobs} == {
            ("captive_fixed_80", m, s)
            for m in ("sqlb", "capacity")
            for s in (1, 2)
        }
        for job in jobs:
            assert len(job.key) == 64  # a real store cache key

    def test_double_init_refuses(self, queue):
        with pytest.raises(FileExistsError, match="already initialised"):
            WorkQueue.init(queue.root, spec())

    def test_open_missing_queue(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="queue init"):
            WorkQueue(tmp_path / "nowhere")

    def test_open_future_format(self, tmp_path):
        root = tmp_path / "future"
        WorkQueue.init(root, spec())
        queue_file = root / "queue.json"
        payload = json.loads(queue_file.read_text())
        payload["format"] = 99
        queue_file.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format"):
            WorkQueue(root)

    def test_job_ids_are_deterministic_and_safe(self):
        assert job_id("captive_fixed_80", "sqlb", 7) == (
            "captive_fixed_80--sqlb--s7"
        )
        assert job_id("a b/c", "m", 1) == "a-b-c--m--s1"


class TestClaim:
    def test_exactly_one_winner_per_ticket(self, queue):
        seen: set[str] = set()
        for owner in ("alpha", "beta", "gamma", "delta", "epsilon"):
            lease = queue.claim(owner, TTL)
            if lease is None:
                continue
            assert lease.job.id not in seen
            seen.add(lease.job.id)
        assert len(seen) == 4  # five claimants, four tickets
        assert queue.claim("late", TTL) is None
        assert queue.counts().leased == 4

    def test_claim_publishes_heartbeat_first(self, queue):
        queue.claim("worker-1", TTL)
        beats = queue.heartbeats()
        assert [b["owner"] for b in beats] == ["worker-1"]
        # A fresh claim is never scavengeable.
        assert queue.requeue_expired() == []

    def test_ack_records_completion_and_releases(self, queue):
        lease = queue.claim("worker-1", TTL)
        queue.ack(lease, "simulated", duration_s=1.5)
        counts = queue.counts()
        assert counts.pending == 3
        assert counts.leased == 0
        assert counts.done == 1
        [record] = [
            r for r in queue.done_records() if r["id"] == lease.job.id
        ]
        assert record["state"] == "simulated"
        assert record["owner"] == "worker-1"
        assert record["duration_s"] == 1.5
        assert record["key"] == lease.job.key


class TestEnqueueDedupe:
    def test_enqueue_skips_known_and_done_jobs(self, queue):
        assert queue.enqueue(spec().expand()) == 0  # all already queued
        lease = queue.claim("w", TTL)
        queue.ack(lease, "simulated")
        # Remove the job record to prove the done record alone blocks it.
        (queue.jobs_dir / f"{lease.job.id}.json").unlink()
        assert queue.enqueue(spec().expand()) == 0


class TestExpiry:
    def test_expired_lease_is_requeued_with_attempt_bump(self, queue):
        lease = queue.claim("doomed", TTL, now=1000.0)
        # TTL passed with no heartbeat renewal: the worker is dead.
        requeued = queue.requeue_expired(now=1000.0 + TTL + 1.0)
        assert requeued == [lease.job.id]
        counts = queue.counts()
        assert counts.pending == 4
        assert counts.leased == 0
        ticket = json.loads(
            (queue.pending_dir / lease.job.id).read_text()
        )
        assert ticket["attempts"] == 1
        # The requeued ticket is claimable again.
        again = queue.claim("survivor", TTL)
        assert again is not None

    def test_live_lease_is_left_alone(self, queue):
        queue.claim("alive", TTL, now=1000.0)
        assert queue.requeue_expired(now=1000.0 + TTL / 2.0) == []
        assert queue.counts().leased == 1

    def test_heartbeat_renewal_extends_the_lease(self, queue):
        queue.claim("renewer", TTL, now=1000.0)
        queue.heartbeat("renewer", TTL, now=1000.0 + TTL)
        assert queue.requeue_expired(now=1000.0 + TTL + 1.0) == []

    def test_missing_heartbeat_counts_as_expired(self, queue):
        lease = queue.claim("ghost", TTL)
        (queue.heartbeats_dir / "ghost.json").unlink()
        assert queue.requeue_expired() == [lease.job.id]

    def test_done_wins_over_a_stale_lease(self, queue):
        """A worker that died between writing done/ and unlinking its
        lease must not get its (finished) job requeued."""
        lease = queue.claim("halfway", TTL, now=1000.0)
        queue.ack(lease, "simulated")
        # Resurrect the lease file as the crash would have left it.
        lease.path.write_text(json.dumps({"attempts": 0}))
        assert queue.requeue_expired(now=1000.0 + TTL + 1.0) == []
        assert not lease.path.exists()
        assert queue.counts().done == 1

    def test_counts_drained(self, queue):
        for _ in range(4):
            queue.ack(queue.claim("w", TTL), "simulated")
        assert queue.counts().drained


class TestReviewHardening:
    def test_claim_ignores_atomic_write_temp_files(self, queue):
        """A dot-prefixed staging file (mid atomic write) must never be
        claimed, scavenged, or counted."""
        (queue.pending_dir / ".captive_fixed_80--sqlb--s9.tmp123").write_text(
            "{}"
        )
        (queue.leases_dir / ".junk@ghost.tmp456").write_text("{}")
        assert queue.counts().pending == 4
        assert queue.counts().leased == 0
        assert queue.requeue_expired() == []
        claimed = set()
        while (lease := queue.claim("w", TTL)) is not None:
            claimed.add(lease.job.id)
        assert len(claimed) == 4  # the temp ticket was never claimable
        assert queue.lease_owners() == {"w": 4}

    def test_unready_queue_is_refused(self, tmp_path):
        """A crash mid-init leaves ready=false; workers must refuse."""
        import json as jsonlib

        root = tmp_path / "torn"
        WorkQueue.init(root, spec())
        payload = jsonlib.loads((root / "queue.json").read_text())
        payload["ready"] = False
        (root / "queue.json").write_text(jsonlib.dumps(payload))
        with pytest.raises(ValueError, match="never fully initialised"):
            WorkQueue(root)

    def test_heartbeat_records_the_sanitised_owner(self, queue):
        queue.heartbeat("host.with/slash", TTL)
        [beat] = queue.heartbeats()
        assert beat["owner"] == "host.with-slash"

    def test_fail_requeues_then_parks_after_budget(self, queue):
        lease = queue.claim("w", TTL)
        assert queue.fail(lease, "step 1", max_attempts=2) == "requeued"
        assert (queue.pending_dir / lease.job.id).exists()
        again = None
        while (candidate := queue.claim("w", TTL)) is not None:
            if candidate.job.id == lease.job.id:
                again = candidate
                break
        assert again is not None
        assert queue.fail(again, "step 2", max_attempts=2) == "error"
        [record] = [
            r for r in queue.done_records() if r["id"] == lease.job.id
        ]
        assert record["state"] == "error"
        assert record["error"] == "step 2"

    def test_claim_retries_unreadable_job_records(self, queue):
        """A ticket whose job record is unreadable is requeued within
        the attempts budget, then parked as an error."""
        victim = queue.jobs()[0]
        (queue.jobs_dir / f"{victim.id}.json").write_text("{not json")
        for _ in range(6):  # enough passes to exhaust the budget
            while queue.claim("w", TTL, max_attempts=2) is not None:
                pass
            # Release the good leases so the next pass can reclaim.
            for lease_path in list(queue.leases_dir.iterdir()):
                if not lease_path.name.startswith("."):
                    identifier = lease_path.name.partition("@")[0]
                    lease_path.rename(queue.pending_dir / identifier)
        [record] = [
            r for r in queue.done_records() if r["id"] == victim.id
        ]
        assert record["state"] == "error"
        assert "unreadable" in record["error"]

    def test_expiry_consumes_the_attempts_budget(self, queue):
        """A job that keeps killing its worker (lease expires, never
        fails in-process) parks as an error after max_attempts."""
        lease = queue.claim("dying", TTL, now=1000.0)
        assert queue.requeue_expired(
            now=2000.0, max_attempts=2
        ) == [lease.job.id]
        again = queue.claim("dying", TTL, now=3000.0)
        # Make the reclaimed job the expired one deterministically.
        while again is not None and again.job.id != lease.job.id:
            queue.ack(again, "simulated")
            again = queue.claim("dying", TTL, now=3000.0)
        assert again is not None
        (queue.heartbeats_dir / "dying.json").unlink()
        assert queue.requeue_expired(now=4000.0, max_attempts=2) == []
        [record] = [
            r for r in queue.done_records() if r["id"] == lease.job.id
        ]
        assert record["state"] == "error"
        assert record["attempts"] == 2
        assert "presumed dead" in record["error"]

    def test_fail_on_a_scavenged_lease_is_a_noop(self, queue):
        """fail() after the scavenger already requeued the lease must
        not recreate it or reset the attempts counter."""
        lease = queue.claim("slow", TTL, now=1000.0)
        assert queue.requeue_expired(now=2000.0) == [lease.job.id]
        pending_before = {p.name for p in queue.pending_dir.iterdir()}
        assert queue.fail(lease, "late failure") == "gone"
        assert {p.name for p in queue.pending_dir.iterdir()} == (
            pending_before
        )
        assert queue.counts().leased == 0
        ticket = json.loads(
            (queue.pending_dir / lease.job.id).read_text()
        )
        assert ticket["attempts"] == 1  # not reset

    def test_ack_overwrites_an_expiry_error_record(self, queue):
        """A presumed-dead worker that actually finishes wins: its ack
        replaces the scavenger's error verdict."""
        lease = queue.claim("zombie", TTL, now=1000.0)
        queue.requeue_expired(now=2000.0, max_attempts=1)  # parks error
        [record] = queue.done_records()
        assert record["state"] == "error"
        queue.ack(lease, "simulated", duration_s=9.0)
        [record] = [
            r for r in queue.done_records() if r["id"] == lease.job.id
        ]
        assert record["state"] == "simulated"

    def test_retire_removes_the_heartbeat(self, queue):
        queue.heartbeat("leaver", TTL)
        queue.retire("leaver")
        assert queue.heartbeats() == []

    def test_error_park_never_clobbers_a_real_result(self, queue):
        """A scavenger's error verdict racing a real ack must lose:
        the completion record stays intact."""
        lease = queue.claim("racer", TTL, now=1000.0)
        queue.ack(lease, "simulated", duration_s=1.0)
        # Resurrect the lease as the race would leave it (the parker
        # read the ticket before ack unlinked the file).
        lease.path.write_text(json.dumps({"attempts": 5}))
        assert queue.fail(lease, "late verdict", max_attempts=1) == "gone"
        [record] = [
            r for r in queue.done_records() if r["id"] == lease.job.id
        ]
        assert record["state"] == "simulated"
        assert not lease.path.exists()

    def test_enqueue_repairs_a_missing_ticket(self, queue):
        """Crash between job-record and ticket writes: the next replica
        enqueue recreates the ticket instead of skipping the job."""
        victim = queue.jobs()[0]
        (queue.pending_dir / victim.id).unlink()
        assert queue.counts().pending == 3
        assert queue.enqueue(spec().expand()) == 1
        assert queue.counts().pending == 4
        assert (queue.pending_dir / victim.id).exists()


class TestClockThreading:
    """A queue opened with ``--expiry-clock mtime`` must never silently
    fall back to the local wall clock (the bug this class pins)."""

    def test_unknown_clock_refused_at_open(self, queue):
        with pytest.raises(ValueError, match="expiry clock"):
            WorkQueue(queue.root, clock="sundial")

    def test_explicit_unknown_clock_still_refused(self, queue):
        with pytest.raises(ValueError, match="expiry clock"):
            queue.requeue_expired(clock="sundial")

    def test_now_follows_the_handle_clock(self, queue, tmp_path):
        import time

        assert abs(queue.now() - time.time()) < 1.0
        mtime_queue = WorkQueue(queue.root, clock="mtime")
        # The filesystem probe returns a real timestamp (tmpfs and
        # local disks track wall time closely; equality is not the
        # contract, finiteness and same-era is).
        assert abs(mtime_queue.now() - time.time()) < 300.0

    def test_heartbeat_deadline_missing_owner(self, queue):
        assert queue.heartbeat_deadline("nobody") == float("-inf")

    def test_heartbeat_deadline_wall(self, queue):
        queue.heartbeat("w", TTL, now=1000.0)
        assert queue.heartbeat_deadline("w") == 1000.0 + TTL

    def test_mtime_queue_ignores_recorded_wall_deadlines(self, queue):
        """Regression: an mtime-opened queue judges liveness by the
        heartbeat *file's* freshness, so a worker whose recorded wall
        deadline is ancient (clock skew) is still alive — and the same
        lease under the wall clock would be scavenged."""
        import time

        lease = queue.claim("skewed", TTL, now=0.0)  # deadline = TTL
        assert lease is not None
        mtime_queue = WorkQueue(queue.root, clock="mtime")
        # Default (handle) clock: the file was touched moments ago.
        assert mtime_queue.requeue_expired() == []
        assert mtime_queue.heartbeat_deadline("skewed") > time.time() - 60.0
        # The recorded deadline says long-expired under the wall clock.
        assert queue.requeue_expired() == [lease.job.id]


class TestFreshQueueMaintenance:
    """gc --prune and retry on an initialised-never-drained queue must
    be clean no-ops: no pruned tickets, no requeues, exit clean."""

    def test_gc_prune_is_a_noop(self, queue):
        report = queue.gc(prune=True)
        assert report.temp_files == ()
        assert report.stale_heartbeats == ()
        assert report.stranded_jobs == ()
        assert queue.counts() == QueueCounts(
            jobs=4, pending=4, leased=0, done=0
        )

    def test_retry_is_a_noop(self, queue):
        report = queue.retry_errors()
        assert report.requeued == ()
        assert report.reticketed == ()
        assert report.skipped == ()
        assert queue.counts().pending == 4

    def test_pending_tickets_are_not_stranded(self, queue):
        assert queue.stranded_jobs() == []
