"""Fleet supervisor advisory state and its dashboard surfacing."""

from __future__ import annotations

import json

import pytest

from repro.scheduler.fleet import FLEET_STATE_NAME, FleetSupervisor
from repro.scheduler.monitor import (
    FLEET_STATE_STALE_S,
    fleet_state,
    format_queue_top,
    queue_top,
)
from repro.scheduler.queue import WorkQueue
from repro.sweeps.spec import SweepSpec
from tests.scheduler.test_fleet import FakeChild, make_spawn

TTL = 30.0


def spec() -> SweepSpec:
    return SweepSpec(
        name="fleet-state-unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb",),
        seeds=(1,),
        scale="tiny",
    )


def run_fleet(state_path, scripts, **kwargs):
    kwargs.setdefault("poll_interval", 0.0)
    kwargs.setdefault("backoff_base", 0.0)
    supervisor = FleetSupervisor(
        make_spawn(scripts), len(scripts), state_path=state_path, **kwargs
    )
    return supervisor.run()


class TestStateFile:
    def test_final_write_marks_not_running(self, tmp_path):
        state_path = tmp_path / FLEET_STATE_NAME
        run_fleet(state_path, [[FakeChild(0)], [FakeChild(0)]])
        state = json.loads(state_path.read_text())
        assert state["running"] is False
        assert state["parked"] is False
        assert state["count"] == 2
        assert state["restarts"] == 0
        assert state["restarts_remaining"] == state["restart_budget"]
        assert len(state["children"]) == 2
        assert {child["state"] for child in state["children"]} == {
            "drained"
        }

    def test_restart_ledger_is_published(self, tmp_path):
        state_path = tmp_path / FLEET_STATE_NAME
        run_fleet(state_path, [[FakeChild(9), FakeChild(0)]])
        state = json.loads(state_path.read_text())
        assert state["restarts"] == 1
        assert (
            state["restarts_remaining"] == state["restart_budget"] - 1
        )

    def test_parked_fleet_says_so(self, tmp_path):
        state_path = tmp_path / FLEET_STATE_NAME
        report = run_fleet(
            state_path,
            [[FakeChild(9), FakeChild(9)]],
            restart_budget=1,
        )
        assert report.parked
        state = json.loads(state_path.read_text())
        assert state["parked"] is True
        assert state["running"] is False
        assert state["restarts_remaining"] == 0

    def test_no_state_path_writes_nothing(self, tmp_path):
        run_fleet(None, [[FakeChild(0)]])
        assert list(tmp_path.iterdir()) == []


class TestFleetStateReader:
    def test_missing_and_garbage_read_as_none(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        assert fleet_state(queue) is None
        (queue.root / FLEET_STATE_NAME).write_text("{torn")
        assert fleet_state(queue) is None
        (queue.root / FLEET_STATE_NAME).write_text("[1, 2]")
        assert fleet_state(queue) is None

    def test_fresh_running_state_is_not_stale(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        (queue.root / FLEET_STATE_NAME).write_text(
            json.dumps({"running": True, "updated": 1000.0})
        )
        state = fleet_state(queue, now=1000.0 + FLEET_STATE_STALE_S / 2)
        assert state["stale"] is False

    def test_silent_running_supervisor_is_stale(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        (queue.root / FLEET_STATE_NAME).write_text(
            json.dumps({"running": True, "updated": 1000.0})
        )
        state = fleet_state(queue, now=1000.0 + FLEET_STATE_STALE_S * 2)
        assert state["stale"] is True

    def test_finished_fleet_is_never_stale(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        (queue.root / FLEET_STATE_NAME).write_text(
            json.dumps({"running": False, "updated": 0.0})
        )
        assert fleet_state(queue, now=1e9)["stale"] is False


class TestDashboardSurfacing:
    def test_frame_carries_fleet_state(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        assert queue_top(queue)["fleet"] is None
        (queue.root / FLEET_STATE_NAME).write_text(
            json.dumps({"running": True, "updated": 0.0, "count": 3})
        )
        assert queue_top(queue)["fleet"]["count"] == 3

    def test_running_fleet_line_rendered(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        (queue.root / FLEET_STATE_NAME).write_text(
            json.dumps(
                {
                    "running": True,
                    "updated": 0.0,
                    "pid": 4242,
                    "count": 3,
                    "restarts": 2,
                    "restart_budget": 9,
                    "restarts_remaining": 7,
                }
            )
        )
        text = format_queue_top(queue_top(queue))
        assert "fleet: pid 4242" in text
        assert "slots 3" in text
        assert "restarts 2/9 (7 left)" in text
        assert "[stale — supervisor silent]" in text

    def test_parked_fleet_line_rendered(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        (queue.root / FLEET_STATE_NAME).write_text(
            json.dumps({"running": False, "parked": True, "updated": 0.0})
        )
        assert "[PARKED]" in format_queue_top(queue_top(queue))

    def test_finished_fleet_is_omitted(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        (queue.root / FLEET_STATE_NAME).write_text(
            json.dumps({"running": False, "parked": False, "updated": 0.0})
        )
        assert "fleet:" not in format_queue_top(queue_top(queue))


class TestHeartbeatLostFlag:
    def test_counters_flag_becomes_worker_flag_and_lost_cell(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue.heartbeat("w", TTL, now=1000.0)
        queue.write_worker_counters(
            "w", {"processed": 1, "heartbeat_lost": 1}
        )
        frame = queue_top(queue, now=1000.0)
        [worker] = frame["status"]["workers"]
        assert worker["heartbeat_lost"] is True
        assert " LOST " in " " + format_queue_top(frame) + " "

    def test_healthy_worker_not_flagged(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        queue.heartbeat("w", TTL, now=1000.0)
        queue.write_worker_counters("w", {"processed": 1})
        [worker] = queue_top(queue, now=1000.0)["status"]["workers"]
        assert worker["heartbeat_lost"] is False


class TestRestartedCounterRate:
    """A fleet restart reuses owner names; rates must never go negative."""

    def _frame_pair(self, queue, counters_before, counters_after):
        queue.heartbeat("w", TTL, now=1000.0)
        queue.write_worker_counters("w", counters_before)
        before = queue_top(queue, now=1000.0)
        queue.write_worker_counters("w", counters_after)
        return queue_top(queue, now=1060.0, previous=before)

    def test_forward_counter_delta_is_the_rate(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        frame = self._frame_pair(
            queue, {"processed": 10}, {"processed": 16}
        )
        [worker] = frame["status"]["workers"]
        assert worker["jobs_per_min"] == pytest.approx(6.0)
        assert worker["restarted"] is False

    def test_counter_reset_clamps_and_flags(self, tmp_path):
        # The previous frame saw processed=10; the restarted worker's
        # fresh counter file says 3.  A naive delta would report
        # -7 jobs/min; the dashboard must clamp to the fresh session's
        # average and flag the row instead.
        queue = WorkQueue.init(tmp_path / "q", spec())
        frame = self._frame_pair(
            queue,
            {"processed": 10},
            {"processed": 3, "busy_s": 30.0},
        )
        [worker] = frame["status"]["workers"]
        assert worker["restarted"] is True
        assert worker["jobs_per_min"] == pytest.approx(6.0)
        text = format_queue_top(frame)
        assert "6.0*" in text
        assert "counter file restarted" in text

    def test_counter_reset_without_busy_time_has_no_rate(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        frame = self._frame_pair(
            queue, {"processed": 10}, {"processed": 0}
        )
        [worker] = frame["status"]["workers"]
        assert worker["restarted"] is True
        assert worker["jobs_per_min"] is None
        assert "counter file restarted" in format_queue_top(frame)

    def test_unrestarted_rows_carry_no_footnote(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        frame = self._frame_pair(
            queue, {"processed": 10}, {"processed": 16}
        )
        assert "counter file restarted" not in format_queue_top(frame)
