"""Tests for adaptive seeding: CI-driven extension, caps, convergence."""

from __future__ import annotations

import math

import pytest

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.scheduler.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    extension_seeds,
)
from repro.scheduler.queue import WorkQueue
from repro.scheduler.worker import QueueWorker
from repro.sweeps.spec import SweepSpec

TTL = 30.0


def spec() -> SweepSpec:
    return SweepSpec(
        name="adaptive-unit",
        scenarios=("captive_fixed_80",),
        methods=("capacity",),
        seeds=(1, 2),
        scale="tiny",
    )


def executor_for(path) -> ExperimentExecutor:
    return ExperimentExecutor(workers=1, store=ResultStore(path))


class TestExtensionSeeds:
    def test_deterministic_ladder(self):
        assert extension_seeds((1, 2), 2) == (1009, 1011)
        assert extension_seeds((1, 2), 2) == (1009, 1011)  # replicated

    def test_skips_already_issued(self):
        assert extension_seeds((1009, 1013), 3) == (1011, 1015, 1017)


class TestAdaptiveConfig:
    def test_round_trips_through_payload(self):
        config = AdaptiveConfig(ci_threshold=0.25, max_seeds=6, seed_batch=3)
        assert AdaptiveConfig.from_payload(config.payload()) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ci_threshold": -1.0, "max_seeds": 4},
            {"ci_threshold": 0.1, "max_seeds": 0},
            {"ci_threshold": 0.1, "max_seeds": 4, "seed_batch": 0},
            {"ci_threshold": 0.1, "max_seeds": 4, "metric": "qps"},
        ],
    )
    def test_rejects_bad_settings(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs)

    def test_controller_requires_an_adaptive_queue(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())  # no adaptive payload
        with pytest.raises(ValueError, match="without adaptive"):
            AdaptiveController(queue, ResultStore(tmp_path / "store"))


class TestControllerDecisions:
    def test_waits_while_the_batch_is_incomplete(self, tmp_path):
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(ci_threshold=0.1, max_seeds=4).payload(),
        )
        controller = AdaptiveController(
            queue, ResultStore(tmp_path / "store")
        )
        [decision] = controller.step()
        assert decision.action == "waiting"
        assert decision.new_seeds == ()
        assert math.isnan(decision.halfwidth)
        assert controller.enqueued([decision]) == 0

    def test_converges_under_a_loose_threshold(self, tmp_path):
        """Acceptance: adaptive seeding demonstrably stops adding seeds
        once the CI threshold is met."""
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(
                ci_threshold=100.0, max_seeds=10
            ).payload(),
        )
        executor = executor_for(tmp_path / "store")
        report = QueueWorker(
            queue, executor=executor, owner="w", ttl=TTL
        ).run()
        # Only the two initial seeds ran: the CI was already tight.
        assert report.processed == 2
        assert queue.counts().drained
        controller = AdaptiveController(queue, executor.store)
        [decision] = controller.step()
        assert decision.action == "converged"
        assert decision.halfwidth <= 100.0
        assert decision.new_seeds == ()

    def test_extends_until_capped_under_a_tight_threshold(self, tmp_path):
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(
                ci_threshold=1e-9, max_seeds=4, seed_batch=1
            ).payload(),
        )
        executor = executor_for(tmp_path / "store")
        report = QueueWorker(
            queue, executor=executor, owner="w", ttl=TTL
        ).run()
        # 2 initial seeds, then 1-seed extensions up to the cap of 4.
        assert report.processed == 4
        issued = sorted({job.seed for job in queue.jobs()})
        assert issued == [1, 2, 1009, 1011]
        controller = AdaptiveController(queue, executor.store)
        [decision] = controller.step()
        assert decision.action == "capped"
        assert decision.halfwidth > 1e-9

    def test_batch_respects_the_remaining_budget(self, tmp_path):
        """A batch never overshoots max_seeds."""
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(
                ci_threshold=1e-9, max_seeds=3, seed_batch=5
            ).payload(),
        )
        executor = executor_for(tmp_path / "store")
        QueueWorker(queue, executor=executor, owner="w", ttl=TTL).run()
        assert sorted({job.seed for job in queue.jobs()}) == [1, 2, 1009]

    def test_replicated_controllers_agree(self, tmp_path):
        """Two controllers stepping the same drained state derive the
        same extension, and the enqueue dedupe collapses it to one."""
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(
                ci_threshold=1e-9, max_seeds=4, seed_batch=2
            ).payload(),
        )
        executor = executor_for(tmp_path / "store")
        # Drain only the initial batch: max_jobs stops before extension.
        QueueWorker(
            queue, executor=executor, owner="w", ttl=TTL, max_jobs=2
        ).run()
        assert queue.counts().drained

        first = AdaptiveController(queue, executor.store)
        second = AdaptiveController(queue, executor.store)
        [d1] = first.step()
        assert d1.action == "extended"
        assert d1.new_seeds == (1009, 1011)
        pending_after_first = queue.counts().pending
        [d2] = second.step()
        # The replica sees the extension already issued and waits.
        assert d2.action == "waiting"
        assert queue.counts().pending == pending_after_first


class TestTerminalShortCircuit:
    def test_all_terminal_step_skips_directory_scans(self, tmp_path):
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(
                ci_threshold=100.0, max_seeds=10
            ).payload(),
        )
        executor = executor_for(tmp_path / "store")
        QueueWorker(queue, executor=executor, owner="w", ttl=TTL).run()
        controller = AdaptiveController(queue, executor.store)
        [first] = controller.step()
        assert first.action == "converged"
        # With every scenario terminal, step() must not rescan the
        # queue directories (or read the store) at all.
        def _boom(*args, **kwargs):
            raise AssertionError("terminal step() touched the disk")

        controller._issued_seeds = _boom
        executor.store.get = _boom
        [cached] = controller.step()
        assert cached == first


class TestTornExtensionRepair:
    def test_stranded_extension_job_is_re_enqueued(self, tmp_path):
        """A crash between an extension's job-record write and its
        ticket write must not wedge the scenario in 'waiting'."""
        import json as jsonlib

        from repro.scheduler.queue import job_id

        two_methods = SweepSpec(
            name="torn",
            scenarios=("captive_fixed_80",),
            methods=("sqlb", "capacity"),
            seeds=(1, 2),
            scale="tiny",
        )
        queue = WorkQueue.init(
            tmp_path / "q",
            two_methods,
            adaptive=AdaptiveConfig(
                ci_threshold=100.0, max_seeds=4
            ).payload(),
        )
        executor = executor_for(tmp_path / "store")
        QueueWorker(queue, executor=executor, owner="w", ttl=TTL).run()
        assert queue.counts().drained

        # Simulate the torn extension: the sqlb record for seed 1009
        # was written (no ticket), the capacity record never was.
        # (The loose threshold means the real controller never extended
        # past the two initial seeds, so 1009 is genuinely torn state.)
        torn_id = job_id("captive_fixed_80", "sqlb", 1009)
        (queue.jobs_dir / f"{torn_id}.json").write_text(
            jsonlib.dumps(
                {
                    "id": torn_id,
                    "scenario": "captive_fixed_80",
                    "method": "sqlb",
                    "seed": 1009,
                    "key": "0" * 64,
                }
            )
        )
        controller = AdaptiveController(queue, executor.store)
        [decision] = controller.step()
        assert decision.action == "waiting"
        # The repair recreated the stranded seed's jobs for every
        # method (sqlb ticket + the whole missing capacity job)...
        counts = queue.counts()
        assert counts.pending == 2
        # ...and a worker can now finish the batch to a terminal state.
        QueueWorker(queue, executor=executor, owner="w2", ttl=TTL).run()
        [final] = AdaptiveController(queue, executor.store).step()
        assert final.action in ("converged", "capped")
        assert 1009 in final.seeds_done


class TestWrongStoreGuard:
    def test_missing_results_wait_instead_of_extending(self, tmp_path):
        """Done records whose results are absent from the configured
        store (typo'd --cache-dir) must read as 'cannot assess', not as
        high variance driving seeds to the cap."""
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(
                ci_threshold=0.1, max_seeds=10, seed_batch=2
            ).payload(),
        )
        executor = executor_for(tmp_path / "store")
        QueueWorker(
            queue, executor=executor, owner="w", ttl=TTL, max_jobs=2
        ).run()
        assert queue.counts().drained

        wrong_store = ResultStore(tmp_path / "typo")
        controller = AdaptiveController(queue, wrong_store)
        [decision] = controller.step()
        assert decision.action == "waiting"
        assert queue.counts().pending == 0  # nothing enqueued


class TestErrorParkedScenario:
    def test_error_cell_is_terminal_not_wedged(self, tmp_path):
        """A scenario with an error-parked cell must reach a terminal
        'error' verdict (and short-circuit), not wait forever."""
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(ci_threshold=0.1, max_seeds=4).payload(),
        )
        executor = executor_for(tmp_path / "store")
        # Park one cell as an error; complete the other normally.
        lease = queue.claim("w", TTL)
        assert queue.fail(lease, "poison", max_attempts=1) == "error"
        QueueWorker(queue, executor=executor, owner="w", ttl=TTL).run()
        assert queue.counts().drained

        controller = AdaptiveController(queue, executor.store)
        [decision] = controller.step()
        assert decision.action == "error"
        assert queue.counts().pending == 0  # nothing enqueued
        # Terminal: the next step short-circuits entirely.
        def _boom(*args, **kwargs):
            raise AssertionError("terminal step() touched the disk")

        controller._issued_seeds = _boom
        [cached] = controller.step()
        assert cached == decision


class TestCiMetricRegistry:
    def test_any_registry_metric_is_accepted(self):
        from repro.analysis.metrics import available_metrics

        for name in available_metrics():
            config = AdaptiveConfig(
                ci_threshold=0.1, max_seeds=4, metric=name
            )
            assert AdaptiveConfig.from_payload(config.payload()) == config

    def test_unknown_metric_names_the_registry(self):
        with pytest.raises(ValueError, match="available:"):
            AdaptiveConfig(
                ci_threshold=0.1, max_seeds=4, metric="wall_clock"
            )

    def test_departure_fraction_drives_convergence(self, tmp_path):
        """Captive runs have zero departures at every seed, so the
        departure-fraction CI is exactly 0 and the first complete
        batch converges — while response time would still be wide."""
        queue = WorkQueue.init(
            tmp_path / "q",
            spec(),
            adaptive=AdaptiveConfig(
                ci_threshold=0.0,
                max_seeds=6,
                metric="departure_fraction",
            ).payload(),
        )
        executor = executor_for(tmp_path / "store")
        QueueWorker(queue, executor=executor, owner="w", ttl=TTL).run()
        assert queue.counts().drained

        controller = AdaptiveController(queue, executor.store)
        [decision] = controller.step()
        assert decision.action == "converged"
        assert decision.halfwidth == 0.0
        assert decision.seeds_done == spec().seeds

    def test_default_metric_is_the_papers_headline(self):
        config = AdaptiveConfig(ci_threshold=0.1, max_seeds=4)
        assert config.metric == "response_time_post_warmup"
