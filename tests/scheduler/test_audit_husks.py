"""Audit crash footprints are gc/fsck litter; committed shards never are.

A worker killed mid-``DecisionAudit.commit`` leaves one of two
footprints in its ``--audit`` directory: a ``*.npz.tmp`` husk (died
between mkstemp and the rename) or a manifest-less ``*.npz`` (died
after the shard rename, before the manifest — the manifest is the
commit marker).  Both are age-gated litter; a paired shard+manifest is
data, whatever its age.
"""

from __future__ import annotations

import os
import time

from repro.scheduler.fsck import fsck_queue
from repro.scheduler.queue import WorkQueue
from repro.sweeps.spec import SweepSpec


def spec() -> SweepSpec:
    return SweepSpec(
        name="audit-husk-unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb",),
        seeds=(1,),
        scale="tiny",
    )


def _aged(path, age_s: float):
    old = time.time() - age_s
    os.utime(path, (old, old))
    return path


def make_tmp_husk(directory, age_s: float):
    path = directory / "audit-sqlb-seed1-abc123-x9q2.npz.tmp"
    path.write_bytes(b"partial")
    return _aged(path, age_s)


def make_orphan_shard(directory, age_s: float):
    path = directory / "audit-sqlb-seed1-abc123.npz"
    path.write_bytes(b"shard-without-manifest")
    return _aged(path, age_s)


def make_committed_shard(directory, age_s: float):
    shard = directory / "audit-sqlb-seed2-def456.npz"
    shard.write_bytes(b"shard")
    manifest = directory / "audit-sqlb-seed2-def456.json"
    manifest.write_text("{}")
    return _aged(shard, age_s), _aged(manifest, age_s)


class TestGc:
    def test_aged_tmp_husk_is_pruned(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        audit_dir = tmp_path / "aud"
        audit_dir.mkdir()
        husk = make_tmp_husk(audit_dir, age_s=10_000.0)
        report = queue.gc(
            prune=True, temp_age=3600.0, extra_roots=(audit_dir,)
        )
        assert husk in report.temp_files
        assert not husk.exists()

    def test_aged_orphan_shard_is_pruned(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        audit_dir = tmp_path / "aud"
        audit_dir.mkdir()
        orphan = make_orphan_shard(audit_dir, age_s=10_000.0)
        report = queue.gc(
            prune=True, temp_age=3600.0, extra_roots=(audit_dir,)
        )
        assert orphan in report.temp_files
        assert not orphan.exists()

    def test_young_footprints_left_alone(self, tmp_path):
        # A live worker legitimately owns both shapes mid-commit.
        queue = WorkQueue.init(tmp_path / "q", spec())
        audit_dir = tmp_path / "aud"
        audit_dir.mkdir()
        husk = make_tmp_husk(audit_dir, age_s=1.0)
        orphan = make_orphan_shard(audit_dir, age_s=1.0)
        report = queue.gc(
            prune=True, temp_age=3600.0, extra_roots=(audit_dir,)
        )
        assert not report.temp_files
        assert husk.exists() and orphan.exists()

    def test_committed_shard_is_data_not_litter(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        audit_dir = tmp_path / "aud"
        audit_dir.mkdir()
        shard, manifest = make_committed_shard(audit_dir, age_s=10_000.0)
        report = queue.gc(
            prune=True, temp_age=3600.0, extra_roots=(audit_dir,)
        )
        assert not report.temp_files
        assert shard.exists() and manifest.exists()


class TestFsck:
    def test_aged_footprints_are_stale_temps(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        audit_dir = tmp_path / "aud"
        audit_dir.mkdir()
        husk = make_tmp_husk(audit_dir, age_s=10_000.0)
        orphan = make_orphan_shard(audit_dir, age_s=10_000.0)
        shard, manifest = make_committed_shard(audit_dir, age_s=10_000.0)
        report = fsck_queue(queue, repair=True, audit_root=audit_dir)
        flagged = {
            v.subject
            for v in report.violations
            if v.kind == "stale-temp"
        }
        assert flagged == {str(husk), str(orphan)}
        assert not husk.exists()
        assert not orphan.exists()
        assert shard.exists() and manifest.exists()

    def test_no_audit_root_means_no_audit_checks(self, tmp_path):
        queue = WorkQueue.init(tmp_path / "q", spec())
        audit_dir = tmp_path / "aud"
        audit_dir.mkdir()
        husk = make_tmp_husk(audit_dir, age_s=10_000.0)
        report = fsck_queue(queue, repair=True)
        assert report.clean
        assert husk.exists()
