"""Tests for ``repro queue fsck``: detection and protocol-safe repair."""

from __future__ import annotations

import json

import pytest

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.scheduler.fsck import fsck_queue
from repro.scheduler.queue import WorkQueue
from repro.scheduler.worker import QueueWorker
from repro.sweeps.spec import SweepSpec

TTL = 30.0
FUTURE = 1e18  # any heartbeat written now is expired against this


def spec() -> SweepSpec:
    return SweepSpec(
        name="unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb", "capacity"),
        seeds=(1, 2),
        scale="tiny",
    )


def make_queue(tmp_path) -> WorkQueue:
    return WorkQueue.init(tmp_path / "queue", spec())


def kinds(report) -> list[str]:
    return sorted(v.kind for v in report.violations)


class TestCleanQueue:
    def test_fresh_queue_is_clean(self, tmp_path):
        report = fsck_queue(make_queue(tmp_path))
        assert report.clean
        assert report.checked["pending"] == 4
        assert report.payload()["clean"] is True

    def test_actively_claimed_queue_is_clean(self, tmp_path):
        queue = make_queue(tmp_path)
        assert queue.claim("live-worker", ttl=TTL) is not None
        # The worker's heartbeat covers its lease: not a violation.
        assert fsck_queue(queue).clean

    def test_fresh_temp_files_are_not_violations(self, tmp_path):
        # Chaos-injected crashes litter dot-prefixed temps; an fsck
        # pass right after a soak must not flag a live writer's (or a
        # freshly crashed one's) stage files.
        queue = make_queue(tmp_path)
        (queue.pending_dir / ".ticket.stage123").write_bytes(b"partial")
        assert fsck_queue(queue).clean

    def test_aged_temp_files_are_pruned(self, tmp_path):
        queue = make_queue(tmp_path)
        litter = queue.pending_dir / ".ticket.stage123"
        litter.write_bytes(b"partial")
        report = fsck_queue(queue, now=FUTURE, repair=True)
        assert kinds(report) == ["stale-temp"]
        assert not litter.exists()


class TestLeaseInvariants:
    def test_uncovered_lease_is_requeued(self, tmp_path):
        queue = make_queue(tmp_path)
        lease = queue.claim("doomed", ttl=TTL)
        (queue.heartbeats_dir / "doomed.json").unlink()
        report = fsck_queue(queue)
        assert kinds(report) == ["uncovered-lease"]
        assert not report.violations[0].repaired
        repaired = fsck_queue(queue, repair=True)
        assert repaired.violations[0].repaired
        assert (queue.pending_dir / lease.job.id).exists()
        assert fsck_queue(queue).clean

    def test_expired_heartbeat_counts_as_uncovered(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.claim("slow", ttl=TTL)
        report = fsck_queue(queue, now=FUTURE, temp_age=1e19)
        assert "uncovered-lease" in kinds(report)

    def test_requeue_respects_attempts_budget(self, tmp_path):
        queue = make_queue(tmp_path)
        lease = queue.claim("crashy", ttl=TTL)
        (queue.heartbeats_dir / "crashy.json").unlink()
        report = fsck_queue(queue, repair=True, max_attempts=1)
        assert report.violations[0].repaired
        record = json.loads(
            (queue.done_dir / f"{lease.job.id}.json").read_text()
        )
        assert record["state"] == "error"

    def test_done_wins_over_lease(self, tmp_path):
        queue = make_queue(tmp_path)
        lease = queue.claim("acker", ttl=TTL)
        queue.ack(lease, "simulated")
        # Resurrect the lease file: the crash-between-done-and-unlink
        # footprint.
        lease.path.write_text(json.dumps({"attempts": 1}))
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["done-wins-lease"]
        assert not lease.path.exists()
        # The done record survived untouched.
        assert (queue.done_dir / f"{lease.job.id}.json").exists()

    def test_pending_and_leased_discards_the_ticket(self, tmp_path):
        queue = make_queue(tmp_path)
        lease = queue.claim("holder", ttl=TTL)
        phantom = queue.pending_dir / lease.job.id
        phantom.write_text(json.dumps({"attempts": 0}))
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["pending-and-leased"]
        assert not phantom.exists()
        assert lease.path.exists()


class TestTornRecords:
    def test_orphan_ticket_is_discarded(self, tmp_path):
        queue = make_queue(tmp_path)
        stray = queue.pending_dir / "not--a--job"
        stray.write_text(json.dumps({"attempts": 0}))
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["orphan-ticket"]
        assert not stray.exists()

    def test_orphan_lease_is_discarded(self, tmp_path):
        queue = make_queue(tmp_path)
        stray = queue.leases_dir / "not--a--job@ghost"
        stray.write_text(json.dumps({"attempts": 1}))
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["orphan-lease"]
        assert not stray.exists()

    def test_torn_ticket_is_rewritten(self, tmp_path):
        queue = make_queue(tmp_path)
        ticket = next(iter(queue.pending_dir.iterdir()))
        ticket.write_text("{torn json")
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["torn-ticket"]
        assert json.loads(ticket.read_text()) == {"attempts": 0}

    def test_bad_attempts_counter_is_reset(self, tmp_path):
        queue = make_queue(tmp_path)
        ticket = next(iter(queue.pending_dir.iterdir()))
        ticket.write_text(json.dumps({"attempts": -7}))
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["bad-attempts"]
        assert json.loads(ticket.read_text()) == {"attempts": 0}

    def test_torn_job_record_is_parked(self, tmp_path):
        queue = make_queue(tmp_path)
        ticket = next(iter(queue.pending_dir.iterdir()))
        identifier = ticket.name
        (queue.jobs_dir / f"{identifier}.json").write_text("{torn")
        report = fsck_queue(queue, repair=True)
        assert "torn-job-record" in kinds(report)
        assert not ticket.exists()
        record = json.loads(
            (queue.done_dir / f"{identifier}.json").read_text()
        )
        assert record["state"] == "error"

    def test_torn_done_record_is_reticketed(self, tmp_path):
        queue = make_queue(tmp_path)
        lease = queue.claim("w", ttl=TTL)
        queue.ack(lease, "simulated")
        done = queue.done_dir / f"{lease.job.id}.json"
        done.write_text("{torn")
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["torn-done-record"]
        assert not done.exists()
        # The at-least-once contract makes the re-run safe (and the
        # store makes it a hit).
        assert (queue.pending_dir / lease.job.id).exists()

    def test_torn_heartbeat_is_pruned(self, tmp_path):
        queue = make_queue(tmp_path)
        beat = queue.heartbeats_dir / "ghost.json"
        beat.write_text("{torn")
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["torn-heartbeat"]
        assert not beat.exists()

    def test_stranded_job_is_reticketed(self, tmp_path):
        queue = make_queue(tmp_path)
        ticket = next(iter(queue.pending_dir.iterdir()))
        identifier = ticket.name
        ticket.unlink()  # the crash-between-enqueue-writes footprint
        report = fsck_queue(queue, repair=True)
        assert kinds(report) == ["stranded-job"]
        assert (queue.pending_dir / identifier).exists()


class TestStoreChecks:
    def test_store_orphans_are_reported_and_pruned(self, tmp_path):
        queue = make_queue(tmp_path)
        store = ResultStore(tmp_path / "store")
        store.root.mkdir()
        (store.root / ("a" * 8 + ".npz")).write_bytes(b"xx")
        (store.root / ("b" * 8 + ".json")).write_text("{}")
        report = fsck_queue(queue, store=store)
        assert kinds(report) == ["store-orphan-json", "store-orphan-npz"]
        fsck_queue(queue, store=store, repair=True)
        assert fsck_queue(queue, store=store).clean

    def test_unreadable_store_entry_is_flagged(self, tmp_path):
        queue = make_queue(tmp_path)
        store = ResultStore(tmp_path / "store")
        store.root.mkdir()
        (store.root / "deadbeef.npz").write_bytes(b"not-a-zip")
        (store.root / "deadbeef.json").write_text("{}")
        report = fsck_queue(queue, store=store)
        assert kinds(report) == ["store-unreadable"]


class TestRepairedQueueDrains:
    def test_chaotic_state_repairs_to_a_drainable_queue(self, tmp_path):
        # Compose several violations at once, repair, then actually
        # drain the queue and check every cell completed exactly once.
        queue = make_queue(tmp_path)
        lease = queue.claim("dead", ttl=TTL)
        (queue.heartbeats_dir / "dead.json").unlink()  # uncovered
        tickets = sorted(queue.pending_dir.iterdir())
        tickets[0].write_text("{torn")  # torn ticket
        tickets[1].unlink()  # stranded job
        (queue.heartbeats_dir / "ghost.json").write_text("{torn")

        report = fsck_queue(queue, repair=True)
        assert not report.clean
        assert not report.unrepaired
        assert fsck_queue(queue).clean

        store = ResultStore(tmp_path / "store")
        executor = ExperimentExecutor(workers=1, store=store)
        worker = QueueWorker(
            queue, executor=executor, owner="drainer", ttl=TTL
        )
        worker_report = worker.run()
        counts = queue.counts()
        assert counts.drained
        assert counts.done == 4
        assert worker_report.processed == 4
        assert store.verify().clean
        # lease.job was requeued, re-run, and stored exactly once.
        assert (queue.done_dir / f"{lease.job.id}.json").exists()


class TestReportShape:
    def test_payload_round_trips_to_json(self, tmp_path):
        queue = make_queue(tmp_path)
        next(iter(queue.pending_dir.iterdir())).write_text("{torn")
        report = fsck_queue(queue)
        payload = json.loads(json.dumps(report.payload()))
        assert payload["unrepaired"] == 1
        assert payload["violations"][0]["kind"] == "torn-ticket"
        assert payload["violations"][0]["repaired"] is False

    def test_unrepaired_listed_without_repair_flag(self, tmp_path):
        queue = make_queue(tmp_path)
        next(iter(queue.pending_dir.iterdir())).unlink()
        report = fsck_queue(queue, repair=False)
        assert len(report.unrepaired) == 1
        # And the stranded job was NOT touched.
        assert len(list(queue.pending_dir.iterdir())) == 3
