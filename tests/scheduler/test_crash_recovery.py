"""Crash-recovery tests: kill a real worker at every commit point.

Each case runs a genuine ``python -m repro queue work`` subprocess with
a ``crash`` failpoint armed at one protocol site, asserts the process
died hard (``os._exit``, exit code 73 — no cleanup, no atexit), and
then proves the documented recovery path — scavenger plus ``queue
fsck --repair`` — restores a queue that drains to completion with no
duplicate stored results.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.reliability import CRASH_EXIT_CODE, FAILPOINTS_ENV
from repro.scheduler.fsck import fsck_queue
from repro.scheduler.queue import WorkQueue
from repro.scheduler.worker import QueueWorker
from repro.sweeps.spec import SweepSpec

TTL = 30.0
FUTURE = 1e18

SRC = Path(__file__).resolve().parents[2] / "src"

#: Every commit point a worker crosses for one job, in protocol order.
CRASH_SITES = [
    "worker.loop",
    "queue.claim.before_rename",
    "queue.claim.after_rename",
    "queue.ack.before_done",
    "queue.ack.after_done",
]


def spec() -> SweepSpec:
    return SweepSpec(
        name="unit",
        scenarios=("captive_fixed_80",),
        methods=("sqlb",),
        seeds=(1, 2),
        scale="tiny",
    )


def run_worker(queue_dir, cache_dir, failpoints=None, timeout=120.0):
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    env.pop(FAILPOINTS_ENV, None)
    if failpoints is not None:
        env[FAILPOINTS_ENV] = failpoints
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "queue",
            "work",
            "--queue-dir",
            str(queue_dir),
            "--cache-dir",
            str(cache_dir),
            "--owner",
            "chaos-victim",
            "--ttl",
            str(TTL),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def recover(queue: WorkQueue) -> None:
    """The documented recovery sequence after a dead worker."""
    queue.requeue_expired(now=FUTURE)
    report = fsck_queue(queue, repair=True, temp_age=1e19)
    assert not report.unrepaired, [v.payload() for v in report.violations]


def drain(queue: WorkQueue, store: ResultStore):
    executor = ExperimentExecutor(workers=1, store=store)
    worker = QueueWorker(queue, executor=executor, owner="rescuer", ttl=TTL)
    return worker.run()


@pytest.mark.parametrize("site", CRASH_SITES)
def test_crash_at_commit_point_recovers(tmp_path, site):
    queue = WorkQueue.init(tmp_path / "queue", spec())
    store = ResultStore(tmp_path / "store")

    result = run_worker(
        tmp_path / "queue",
        tmp_path / "store",
        failpoints=f"{site}:crash:1",
    )
    assert result.returncode == CRASH_EXIT_CODE, result.stderr

    recover(queue)
    assert fsck_queue(queue, temp_age=1e19).clean

    drain(queue, store)
    counts = queue.counts()
    assert counts.drained, counts
    assert counts.done == 2
    # Zero duplicate stored results: the store is content-addressed,
    # so a redo of a crashed job lands on the same key — one pair per
    # unique cell, every pair readable.
    verify = store.verify()
    assert verify.clean, verify
    assert verify.entries <= 2


def test_crash_after_done_does_not_rerun_the_job(tmp_path):
    # queue.ack.after_done crashes between the done record landing and
    # the lease unlink: the job IS finished.  Recovery must honour
    # done-wins and not hand the job out again.
    queue = WorkQueue.init(tmp_path / "queue", spec())
    store = ResultStore(tmp_path / "store")
    result = run_worker(
        tmp_path / "queue",
        tmp_path / "store",
        failpoints="queue.ack.after_done:crash:1",
    )
    assert result.returncode == CRASH_EXIT_CODE, result.stderr
    assert queue.counts().done == 1  # the done record committed

    recover(queue)
    # The stale lease was discarded (done-wins), not requeued.
    assert queue.counts().leased == 0
    assert queue.counts().done == 1

    report = drain(queue, store)
    assert queue.counts().drained
    assert report.processed == 1  # only the genuinely unfinished job


def test_crashed_worker_loses_no_work_without_fsck(tmp_path):
    # The scavenger alone (no fsck) already recovers the common case:
    # a mid-job hard crash leaves an expired lease that requeues.
    queue = WorkQueue.init(tmp_path / "queue", spec())
    store = ResultStore(tmp_path / "store")
    result = run_worker(
        tmp_path / "queue",
        tmp_path / "store",
        failpoints="queue.ack.before_done:crash:1",
    )
    assert result.returncode == CRASH_EXIT_CODE, result.stderr

    requeued = queue.requeue_expired(now=FUTURE)
    assert len(requeued) == 1

    drain(queue, store)
    assert queue.counts().drained
    assert queue.counts().done == 2


def test_clean_worker_subprocess_baseline(tmp_path):
    # Control: with no failpoints the same subprocess drains cleanly,
    # proving the chaos cases above fail for the injected reason.
    queue = WorkQueue.init(tmp_path / "queue", spec())
    result = run_worker(tmp_path / "queue", tmp_path / "store")
    assert result.returncode == 0, result.stderr
    assert queue.counts().drained
    assert fsck_queue(queue, store=ResultStore(tmp_path / "store")).clean
