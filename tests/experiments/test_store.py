"""Tests for the persistent result store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.store import ResultStore, cache_key
from repro.simulation.config import DepartureRules, WorkloadSpec, tiny_config
from repro.simulation.engine import run_simulation


@pytest.fixture(scope="module")
def captive_result():
    return run_simulation(tiny_config(duration=40.0), "sqlb", seed=3)


@pytest.fixture(scope="module")
def autonomous_result():
    config = tiny_config(
        duration=120.0, workload=WorkloadSpec.fixed(1.0)
    ).with_departures(DepartureRules.autonomous(True))
    return run_simulation(config, "capacity", seed=5)


class TestCacheKey:
    def test_stable_across_calls(self):
        config = tiny_config()
        assert cache_key(config, "sqlb", 1) == cache_key(config, "sqlb", 1)

    def test_sensitive_to_every_component(self):
        config = tiny_config()
        base = cache_key(config, "sqlb", 1)
        assert cache_key(config, "sqlb", 2) != base
        assert cache_key(config, "capacity", 1) != base
        assert cache_key(tiny_config(duration=121.0), "sqlb", 1) != base
        nested = tiny_config(
            departures=DepartureRules.autonomous(False)
        )
        assert cache_key(nested, "sqlb", 1) != base

    def test_equal_configs_share_a_key(self):
        # Two separately constructed but equal configs must collide.
        assert cache_key(tiny_config(), "sqlb", 1) == cache_key(
            tiny_config(), "sqlb", 1
        )

    def test_fixed_ramp_keys_stable_across_releases(self):
        """Frozen PR 1 keys: stores populated before the burst/piecewise
        workload kinds existed must stay valid.  Unset (None) workload
        knobs are dropped from the key payload, so adding optional
        fields to WorkloadSpec must never shift these hashes (an
        intentional semantic change shifts them via ENGINE_VERSION)."""
        from repro.simulation.config import scaled_config

        assert cache_key(tiny_config(), "sqlb", 11) == (
            "0133888f71ac6fb810cec6978344380b8c9c3ad6737b7dce3564a8b9f3fa3e82"
        )
        assert cache_key(scaled_config(), "capacity", 23) == (
            "a49dceb50f3fbd46d705aa49bf9c85359821bbd1940aaba455175d2ca1c18e57"
        )

    def test_new_workload_kinds_get_distinct_keys(self):
        burst = tiny_config(
            workload=WorkloadSpec.burst(base=0.4, peak=1.0, start=0.4, end=0.6)
        )
        piecewise = tiny_config(
            workload=WorkloadSpec.piecewise(((0.0, 0.4), (1.0, 0.4)))
        )
        keys = {
            cache_key(tiny_config(), "sqlb", 1),
            cache_key(burst, "sqlb", 1),
            cache_key(piecewise, "sqlb", 1),
            cache_key(tiny_config(workload=WorkloadSpec.fixed(0.4)), "sqlb", 1),
        }
        assert len(keys) == 4


class TestRoundTrip:
    def _assert_round_trip(self, store, result):
        store.put(result)
        loaded = store.get(result.config, result.method_name, result.seed)
        assert loaded is not None

        assert loaded.method_name == result.method_name
        assert loaded.seed == result.seed
        assert loaded.config == result.config
        assert loaded.queries_issued == result.queries_issued
        assert loaded.queries_served == result.queries_served
        assert loaded.queries_unserved == result.queries_unserved
        assert loaded.initial_providers == result.initial_providers
        assert loaded.initial_consumers == result.initial_consumers

        # Scalars and every array must survive bit-exactly (NaN included).
        for attribute in ("response_time_mean", "response_time_post_warmup"):
            left = getattr(loaded, attribute)
            right = getattr(result, attribute)
            assert left == right or (np.isnan(left) and np.isnan(right))
        np.testing.assert_array_equal(loaded.times(), result.times())
        assert set(loaded.collector.names) == set(result.collector.names)
        for name in result.collector.names:
            assert np.array_equal(
                loaded.series(name), result.series(name), equal_nan=True
            ), name
        assert set(loaded.final) == set(result.final)
        for name, values in result.final.items():
            assert loaded.final[name].dtype == values.dtype, name
            assert np.array_equal(
                loaded.final[name],
                values,
                equal_nan=values.dtype.kind == "f",
            ), name
        assert loaded.departures == result.departures

    def test_captive_round_trip(self, tmp_path, captive_result):
        self._assert_round_trip(ResultStore(tmp_path), captive_result)

    def test_autonomous_round_trip(self, tmp_path, autonomous_result):
        """Departure records and fractions survive serialization."""
        store = ResultStore(tmp_path)
        self._assert_round_trip(store, autonomous_result)
        loaded = store.get(
            autonomous_result.config,
            autonomous_result.method_name,
            autonomous_result.seed,
        )
        assert (
            loaded.provider_departure_fraction()
            == autonomous_result.provider_departure_fraction()
        )
        assert (
            loaded.consumer_departure_fraction()
            == autonomous_result.consumer_departure_fraction()
        )


class TestStoreBehaviour:
    def test_miss_on_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "never_created")
        assert store.get(tiny_config(), "sqlb", 1) is None
        assert store.misses == 1
        assert len(store) == 0

    def test_contains_and_len(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        config = captive_result.config
        assert not store.contains(config, "sqlb", 3)
        store.put(captive_result)
        assert store.contains(config, "sqlb", 3)
        assert len(store) == 1

    def test_clear_removes_everything(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        store.put(captive_result)
        assert store.clear() == 1
        assert len(store) == 0
        assert store.get(captive_result.config, "sqlb", 3) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        key = store.put(captive_result)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert store.get(captive_result.config, "sqlb", 3) is None
        # A fresh put repairs the entry.
        store.put(captive_result)
        assert store.get(captive_result.config, "sqlb", 3) is not None

    def test_schema_mismatched_entry_is_a_miss(self, tmp_path, captive_result):
        """Valid JSON missing expected keys must degrade to a miss."""
        store = ResultStore(tmp_path)
        key = store.put(captive_result)
        (tmp_path / f"{key}.json").write_text('{"method_name": "sqlb"}')
        assert store.get(captive_result.config, "sqlb", 3) is None
        assert store.misses == 1

    def test_put_is_idempotent(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        first = store.put(captive_result)
        second = store.put(captive_result)
        assert first == second
        assert len(store) == 1

    def test_metadata_is_plain_json(self, tmp_path, captive_result):
        """The sidecar stays greppable: no pickles, plain JSON."""
        store = ResultStore(tmp_path)
        key = store.put(captive_result)
        meta = json.loads((tmp_path / f"{key}.json").read_text())
        assert meta["method_name"] == "sqlb"
        assert meta["seed"] == 3
        assert meta["engine_version"]

class TestVerify:
    def test_clean_store(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        store.put(captive_result)
        report = store.verify()
        assert report.clean
        assert report.entries == 1
        assert store.verify(deep=False).clean

    def test_empty_and_missing_roots_are_clean(self, tmp_path):
        assert ResultStore(tmp_path / "never_created").verify().clean

    def test_orphan_npz_is_flagged(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        key = store.put(captive_result)
        (tmp_path / f"{key}.json").unlink()
        report = store.verify()
        assert not report.clean
        assert report.orphan_npz == (key,)

    def test_orphan_json_is_flagged(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        key = store.put(captive_result)
        (tmp_path / f"{key}.npz").unlink()
        report = store.verify()
        assert report.orphan_json == (key,)

    def test_deep_verify_catches_torn_payloads(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        key = store.put(captive_result)
        payload = (tmp_path / f"{key}.npz").read_bytes()
        (tmp_path / f"{key}.npz").write_bytes(payload[: len(payload) // 2])
        assert store.verify(deep=False).clean  # pairing alone can't see it
        report = store.verify(deep=True)
        assert report.unreadable == (key,)

    def test_prune_invalid_restores_clean(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        key = store.put(captive_result)
        (tmp_path / f"{key}.json").unlink()
        removed = store.prune_invalid()
        assert removed == 1
        assert store.verify().clean
        # A fresh put fully repairs the entry.
        store.put(captive_result)
        assert store.contains(captive_result.config, "sqlb", 3)

    def test_temp_litter_is_ignored(self, tmp_path, captive_result):
        store = ResultStore(tmp_path)
        store.put(captive_result)
        (tmp_path / ".stage.partial").write_bytes(b"x")
        assert store.verify().clean


class TestWriteOrder:
    def test_json_is_the_commit_marker(self, tmp_path, captive_result):
        # put() writes npz strictly before json; killing the second
        # write must leave a store that reads as a miss, never a
        # half-entry that reads as a hit.
        from repro.reliability import FailpointError, failpoints_session

        store = ResultStore(tmp_path)
        with failpoints_session("store.write.before_replace:raise:2"):
            with pytest.raises(FailpointError):
                store.put(captive_result)
        key = cache_key(captive_result.config, "sqlb", 3)
        assert (tmp_path / f"{key}.npz").exists()
        assert not (tmp_path / f"{key}.json").exists()
        assert not store.contains(captive_result.config, "sqlb", 3)
        assert store.get(captive_result.config, "sqlb", 3) is None
        assert store.verify().orphan_npz == (key,)
        # Idempotent redo commits the entry.
        store.put(captive_result)
        assert store.contains(captive_result.config, "sqlb", 3)
        assert store.verify().clean

    def test_killed_first_write_leaves_no_trace(self, tmp_path, captive_result):
        from repro.reliability import FailpointError, failpoints_session

        store = ResultStore(tmp_path)
        with failpoints_session("store.write.before_replace:raise:1"):
            with pytest.raises(FailpointError):
                store.put(captive_result)
        key = cache_key(captive_result.config, "sqlb", 3)
        assert not (tmp_path / f"{key}.npz").exists()
        assert not (tmp_path / f"{key}.json").exists()


class TestDurableWrites:
    def test_durable_put_round_trips(self, tmp_path, captive_result):
        from repro.reliability import durable_writes_session

        store = ResultStore(tmp_path)
        with durable_writes_session(True):
            store.put(captive_result)
        loaded = store.get(captive_result.config, "sqlb", 3)
        assert loaded is not None
        np.testing.assert_array_equal(
            loaded.times(), captive_result.times()
        )
