"""Tests for the parallel experiment executor and its default wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.executor import (
    ExperimentExecutor,
    SimulationJob,
    configure_default_executor,
    get_default_executor,
    set_default_executor,
)
from repro.experiments.harness import run_method_family, run_repeated
from repro.experiments.store import ResultStore
from repro.simulation.config import tiny_config
from repro.simulation.engine import run_simulation


@pytest.fixture(autouse=True)
def _reset_default_executor():
    """Never leak a configured default executor into other tests."""
    yield
    set_default_executor(None)


def _assert_results_identical(left, right):
    assert left.method_name == right.method_name
    assert left.seed == right.seed
    assert left.queries_issued == right.queries_issued
    assert left.queries_served == right.queries_served
    assert left.queries_unserved == right.queries_unserved
    np.testing.assert_array_equal(left.times(), right.times())
    assert set(left.collector.names) == set(right.collector.names)
    for name in left.collector.names:
        assert np.array_equal(
            left.series(name), right.series(name), equal_nan=True
        ), name


class TestSimulationJob:
    def test_rejects_method_instances(self, config):
        from repro.allocation.capacity_based import CapacityBasedMethod

        with pytest.raises(TypeError):
            SimulationJob(config, CapacityBasedMethod(), 1)

    def test_hashable(self, config):
        jobs = {SimulationJob(config, "sqlb", 1), SimulationJob(config, "sqlb", 1)}
        assert len(jobs) == 1


class TestExperimentExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ExperimentExecutor(workers=0)

    def test_serial_matches_direct_simulation(self):
        config = tiny_config(duration=40.0)
        executor = ExperimentExecutor(workers=1)
        result = executor.run_one(config, "sqlb", seed=3)
        direct = run_simulation(config, "sqlb", seed=3)
        _assert_results_identical(result, direct)
        assert executor.simulations_run == 1

    def test_parallel_matches_serial_bitwise(self):
        """Acceptance: the pool path is numerically identical to serial."""
        config = tiny_config(duration=60.0)
        jobs = [
            SimulationJob(config, method, seed)
            for method in ("sqlb", "capacity")
            for seed in (1, 2)
        ]
        serial = ExperimentExecutor(workers=1).run(jobs)
        parallel = ExperimentExecutor(workers=2).run(jobs)
        for left, right in zip(serial, parallel):
            _assert_results_identical(left, right)

    def test_preserves_job_order(self, tmp_path):
        config = tiny_config(duration=40.0)
        store = ResultStore(tmp_path)
        # Warm one job so the run mixes store hits and fresh simulations.
        ExperimentExecutor(store=store).run_one(config, "capacity", seed=2)
        executor = ExperimentExecutor(workers=2, store=store)
        jobs = [
            SimulationJob(config, "sqlb", 1),
            SimulationJob(config, "capacity", 2),
            SimulationJob(config, "sqlb", 3),
        ]
        results = executor.run(jobs)
        assert [(r.method_name, r.seed) for r in results] == [
            ("sqlb", 1),
            ("capacity", 2),
            ("sqlb", 3),
        ]
        assert executor.simulations_run == 2

    def test_run_detailed_reports_ground_truth_hits(self, tmp_path):
        config = tiny_config(duration=40.0)
        store = ResultStore(tmp_path)
        ExperimentExecutor(store=store).run_one(config, "capacity", seed=2)

        executor = ExperimentExecutor(workers=1, store=store)
        detailed = executor.run_detailed(
            [
                SimulationJob(config, "sqlb", 1),
                SimulationJob(config, "capacity", 2),
            ]
        )
        assert [hit for _, hit in detailed] == [False, True]
        assert executor.simulations_run == 1
        # Store-less executors never report hits.
        bare = ExperimentExecutor(workers=1).run_detailed(
            [SimulationJob(config, "capacity", 2)]
        )
        assert [hit for _, hit in bare] == [False]
        # Fully warm: everything is a hit and nothing simulates.
        warm = ExperimentExecutor(workers=1, store=store).run_detailed(
            [SimulationJob(config, "capacity", 2)]
        )
        assert [hit for _, hit in warm] == [True]

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        """Acceptance: cold → warm re-run performs zero new simulations."""
        config = tiny_config(duration=40.0)
        jobs = [
            SimulationJob(config, method, seed)
            for method in ("sqlb", "capacity")
            for seed in (1, 2)
        ]
        store = ResultStore(tmp_path)
        cold = ExperimentExecutor(workers=2, store=store)
        cold_results = cold.run(jobs)
        assert cold.simulations_run == len(jobs)
        assert store.writes == len(jobs)

        warm = ExperimentExecutor(workers=2, store=store)
        warm_results = warm.run(jobs)
        assert warm.simulations_run == 0
        assert store.hits == len(jobs)
        for left, right in zip(cold_results, warm_results):
            _assert_results_identical(left, right)

    def test_registry_aliases_never_share_cache_entries(self, tmp_path):
        """knbest and knbest_score share a class-level method name; the
        store must key by the registry name so one alias's cached runs
        can never answer for the other."""
        config = tiny_config(duration=40.0)
        store = ResultStore(tmp_path)
        first = ExperimentExecutor(store=store)
        first.run_one(config, "knbest_score", seed=1)
        assert first.simulations_run == 1

        second = ExperimentExecutor(store=store)
        second.run_one(config, "knbest", seed=1)
        assert second.simulations_run == 1  # no false hit
        # And each alias warm-hits itself.
        third = ExperimentExecutor(store=store)
        third.run_one(config, "knbest_score", seed=1)
        third.run_one(config, "knbest", seed=1)
        assert third.simulations_run == 0


class TestWorkersFromEnvironment:
    def test_defaults_and_parses(self, monkeypatch):
        from repro.experiments.executor import WORKERS_ENV, workers_from_environment

        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert workers_from_environment() == 1
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert workers_from_environment() == 4
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert workers_from_environment() == 1  # clamped

    def test_garbage_raises_named_error(self, monkeypatch):
        from repro.experiments.executor import WORKERS_ENV, workers_from_environment

        monkeypatch.setenv(WORKERS_ENV, "abc")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            workers_from_environment()


class TestDefaultExecutorWiring:
    def test_configure_installs_and_reset_restores(self, tmp_path):
        executor = configure_default_executor(workers=2, cache_dir=tmp_path)
        assert get_default_executor() is executor
        assert executor.store is not None
        set_default_executor(None)
        assert get_default_executor() is not executor

    def test_run_repeated_uses_default_executor(self, tmp_path):
        executor = configure_default_executor(workers=1, cache_dir=tmp_path)
        config = tiny_config(duration=40.0)
        run_repeated(config, "sqlb", (1, 2))
        assert executor.simulations_run == 2
        # Same runs again: served from the store, not re-simulated.
        run_repeated(config, "sqlb", (1, 2))
        assert executor.simulations_run == 2
        assert executor.store.hits == 2

    def test_run_method_family_cold_then_warm(self, tmp_path):
        """A family re-request in a fresh executor re-simulates nothing."""
        config = tiny_config(duration=40.0)
        methods, seeds = ("sqlb", "capacity"), (1, 2)

        cold = configure_default_executor(workers=1, cache_dir=tmp_path)
        family = run_method_family(config, methods, seeds)
        assert cold.simulations_run == len(methods) * len(seeds)

        # A new executor simulates a fresh interpreter session sharing
        # the same on-disk store (configure also clears the lru memo).
        warm = configure_default_executor(workers=1, cache_dir=tmp_path)
        again = run_method_family(config, methods, seeds)
        assert warm.simulations_run == 0
        assert warm.store.hits == len(methods) * len(seeds)
        for method in methods:
            for left, right in zip(
                family[method].results, again[method].results
            ):
                _assert_results_identical(left, right)

    def test_replacing_executor_clears_family_memo(self, tmp_path):
        config = tiny_config(duration=40.0)
        first = configure_default_executor(workers=1)
        family = run_method_family(config, ("sqlb",), (1,))
        assert run_method_family(config, ("sqlb",), (1,)) is family
        configure_default_executor(workers=1)
        assert run_method_family(config, ("sqlb",), (1,)) is not family
