"""Tests for departure-risk prediction (Section 3.3's diagnostic use).

The headline test reproduces the paper's reasoning end to end: read
the risks off *captive* runs, then verify them against the realised
departures of *autonomous* runs of the same environment.
"""

from __future__ import annotations

import pytest

from repro.experiments.prediction import predict_departure_risks
from repro.simulation.config import (
    DepartureRules,
    WorkloadSpec,
    tiny_config,
)
from repro.simulation.engine import run_simulation

CAPTIVE = tiny_config(duration=250.0, workload=WorkloadSpec.fixed(0.8))


@pytest.fixture(scope="module")
def captive_runs():
    return {
        method: run_simulation(CAPTIVE, method, seed=31)
        for method in ("sqlb", "capacity", "mariposa")
    }


class TestReportShape:
    def test_evidence_and_flags_present(self, captive_runs):
        report = predict_departure_risks(captive_runs["sqlb"])
        assert set(report.flags()) == {
            "provider_dissatisfaction",
            "provider_load_pathology",
            "consumer_dissatisfaction",
        }
        assert set(report.evidence) == {
            "provider_allocation_satisfaction_mean",
            "provider_punished_fraction",
            "utilization_min_max_ratio",
            "consumer_allocation_satisfaction_mean",
            "consumer_punished_fraction",
        }
        assert report.method == "sqlb"

    def test_rejects_empty_population(self, captive_runs):
        result = captive_runs["sqlb"]
        result.final["provider_active"][:] = False
        try:
            with pytest.raises(ValueError):
                predict_departure_risks(result)
        finally:
            result.final["provider_active"][:] = True


class TestPaperPredictions:
    def test_capacity_based_flags_provider_dissatisfaction(
        self, captive_runs
    ):
        """The paper's Section 6.3.1 prediction: 'we can predict that
        when providers will be free to leave, Capacity based will
        suffer from providers' departures by dissatisfaction'."""
        report = predict_departure_risks(captive_runs["capacity"])
        assert report.provider_dissatisfaction

    def test_sqlb_does_not_flag_provider_dissatisfaction(self, captive_runs):
        report = predict_departure_risks(captive_runs["sqlb"])
        assert not report.provider_dissatisfaction

    def test_baselines_flag_consumer_risk_sqlb_does_not(self, captive_runs):
        sqlb = predict_departure_risks(captive_runs["sqlb"])
        capacity = predict_departure_risks(captive_runs["capacity"])
        assert not sqlb.consumer_dissatisfaction
        assert capacity.consumer_dissatisfaction

    def test_predictions_verified_by_autonomous_runs(self, captive_runs):
        """Captive-run risk flags must anticipate the realised
        departures once the same environment turns autonomous."""
        autonomous_config = CAPTIVE.with_departures(
            DepartureRules.autonomous(True)
        )
        for method in ("sqlb", "capacity"):
            report = predict_departure_risks(captive_runs[method])
            realised = run_simulation(autonomous_config, method, seed=31)
            provider_loss = realised.provider_departure_fraction()
            consumer_loss = realised.consumer_departure_fraction()
            if report.provider_dissatisfaction:
                assert provider_loss > 0.2
            if report.consumer_dissatisfaction:
                assert consumer_loss > 0.1
            if not report.any_risk():
                assert provider_loss < 0.5
                assert consumer_loss == 0.0
