"""Tests for the plain-text report rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.autonomy import DepartureReasonTable
from repro.experiments.report import (
    format_curve_table,
    format_reason_table,
    format_series_table,
    format_surface,
)


class TestFormatSeriesTable:
    def test_renders_header_and_rows(self):
        times = np.array([10.0, 20.0])
        table = format_series_table(
            times,
            {"sqlb": np.array([0.5, 0.6]), "capacity": np.array([0.4, 0.3])},
            value_label="satisfaction",
        )
        lines = table.splitlines()
        assert lines[0] == "# satisfaction"
        assert "sqlb" in lines[1] and "capacity" in lines[1]
        assert len(lines) == 4

    def test_thins_long_series_keeping_last(self):
        times = np.linspace(0, 1000, 101)
        series = {"m": np.linspace(0, 1, 101)}
        table = format_series_table(times, series, "x", max_rows=10)
        lines = table.splitlines()
        assert len(lines) <= 12
        assert "1000.0" in lines[-1]

    def test_nan_rendered_as_dash(self):
        table = format_series_table(
            np.array([1.0]), {"m": np.array([float("nan")])}, "x"
        )
        assert table.splitlines()[-1].split()[-1] == "-"

    def test_rejects_misaligned_series(self):
        with pytest.raises(ValueError):
            format_series_table(
                np.array([1.0, 2.0]), {"m": np.array([1.0])}, "x"
            )


class TestFormatCurveTable:
    def test_scales_workload_to_percent(self):
        table = format_curve_table(
            (0.2, 1.0),
            {"sqlb": np.array([1.5, 9.0])},
            value_label="response time",
        )
        lines = table.splitlines()
        assert lines[2].split()[0] == "20"
        assert lines[3].split()[0] == "100"


class TestFormatReasonTable:
    def test_renders_every_reason_and_dimension(self):
        table = DepartureReasonTable(
            method="sqlb",
            cells={
                "dissatisfaction": {
                    "interest": {"low": 1.0, "medium": 2.0, "high": 3.0},
                    "adaptation": {"low": 2.0, "medium": 2.0, "high": 2.0},
                    "capacity": {"low": 3.0, "medium": 2.0, "high": 1.0},
                }
            },
            totals={"dissatisfaction": 6.0},
        )
        text = format_reason_table({"sqlb": table})
        assert "== sqlb ==" in text
        assert "dissatisfaction" in text
        assert "6.0%" in text


class TestFormatSurface:
    def test_renders_thinned_grid(self):
        x = np.linspace(-1, 1, 21)
        y = np.linspace(0, 2, 21)
        surface = np.outer(x, y)
        text = format_surface(
            x, y, surface, "intention", x_label="pref", y_label="ut",
            max_rows=5, max_cols=5,
        )
        lines = text.splitlines()
        assert lines[0] == "# intention"
        assert len(lines) <= 7

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            format_surface(
                np.zeros(3), np.zeros(4), np.zeros((4, 3)), "x"
            )
