"""Tests for the autonomy experiment family."""

from __future__ import annotations

from repro.experiments.autonomy import (
    BANDS,
    DIMENSIONS,
    REASONS,
    consumer_departure_curve,
    departure_reason_table,
    departure_response_times,
    provider_departure_curve,
)
from repro.simulation.config import tiny_config


BASE = tiny_config(duration=150.0)
METHODS = ("sqlb", "capacity")
SEEDS = (1,)
WORKLOADS = (0.8,)


class TestDepartureCurves:
    def test_provider_curve_fractions_in_range(self):
        curve = provider_departure_curve(
            config=BASE, methods=METHODS, seeds=SEEDS, workloads=WORKLOADS
        )
        for method in METHODS:
            assert curve[method].shape == (1,)
            assert 0.0 <= curve[method][0] <= 1.0

    def test_consumer_curve_fractions_in_range(self):
        curve = consumer_departure_curve(
            config=BASE, methods=METHODS, seeds=SEEDS, workloads=WORKLOADS
        )
        for method in METHODS:
            assert 0.0 <= curve[method][0] <= 1.0

    def test_response_time_variants_accept_both_rule_sets(self):
        for include in (False, True):
            curve = departure_response_times(
                include_overutilization=include,
                config=BASE,
                methods=METHODS,
                seeds=SEEDS,
                workloads=WORKLOADS,
            )
            assert set(curve.response_times) == set(METHODS)


class TestDepartureReasonTable:
    def test_structure_and_consistency(self):
        tables = departure_reason_table(
            workload=0.8, config=BASE, methods=METHODS, seeds=SEEDS
        )
        assert set(tables) == set(METHODS)
        for method, table in tables.items():
            assert set(table.cells) == set(REASONS)
            for reason in REASONS:
                assert set(table.cells[reason]) == set(DIMENSIONS)
                for dimension in DIMENSIONS:
                    assert set(table.cells[reason][dimension]) == set(BANDS)
            # Each breakdown row sums to the reason total (the paper's
            # Table 3 invariant).
            table.check_consistency(tolerance=1e-9)

    def test_totals_bounded_by_population(self):
        tables = departure_reason_table(
            workload=0.8, config=BASE, methods=METHODS, seeds=SEEDS
        )
        for table in tables.values():
            assert sum(table.totals.values()) <= 100.0 + 1e-9
