"""Tests for the throughput-regression harness (``repro perf``)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.cli as cli
import repro.experiments.perf as perf
from repro.experiments.perf import (
    PERF_MATRIX,
    PerfCell,
    compare_reports,
    format_report,
    load_report,
    profile_run,
    run_perf,
    write_report,
)
from repro.simulation.config import WorkloadSpec, tiny_config
from repro.simulation.engine import ENGINE_VERSION


def report_with(cells: dict) -> dict:
    return {
        "engine_version": ENGINE_VERSION,
        "mode": "full",
        "python": "3",
        "numpy": "2",
        "seed": 1,
        "cells": cells,
        "aggregate_qps": 1000.0,
    }


TINY_MATRIX = (
    PerfCell(
        "tiny_captive",
        lambda: tiny_config(duration=30.0, workload=WorkloadSpec.fixed(0.8)),
        quick=True,
    ),
)


class TestRunPerf:
    def test_quick_run_reports_every_cell_method_pair(self, monkeypatch):
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        report = run_perf(quick=True, methods=("sqlb", "capacity"))
        assert report["mode"] == "quick"
        assert report["engine_version"] == ENGINE_VERSION
        assert set(report["cells"]) == {
            "tiny_captive/sqlb",
            "tiny_captive/capacity",
        }
        for cell in report["cells"].values():
            assert cell["queries"] > 0
            assert cell["seconds"] > 0
            assert cell["qps"] > 0
        assert report["aggregate_qps"] > 0

    def test_quick_subset_is_marked_on_the_standard_matrix(self):
        quick = [cell.name for cell in PERF_MATRIX if cell.quick]
        full = [cell.name for cell in PERF_MATRIX]
        assert quick == ["captive_small", "autonomy_small"]
        assert full == [
            "captive_small",
            "autonomy_small",
            "captive_large",
            "autonomy_large",
        ]

    def test_format_report_lists_cells_and_aggregate(self, monkeypatch):
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        report = run_perf(quick=True, methods=("sqlb",))
        text = format_report(report)
        assert "tiny_captive/sqlb" in text
        assert "aggregate" in text

    def test_report_round_trips_through_json(self, monkeypatch, tmp_path):
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        report = run_perf(quick=True, methods=("sqlb",))
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        assert load_report(str(path)) == json.loads(
            json.dumps(report)
        )

    def test_phase_breakdown_rides_along_by_default(self, monkeypatch):
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        report = run_perf(quick=True, methods=("sqlb",))
        phases = report["cells"]["tiny_captive/sqlb"]["phases"]
        assert set(phases) == {
            "arrival",
            "candidate_lookup",
            "scoring",
            "ranking",
            "log_push",
        }
        assert all(seconds >= 0.0 for seconds in phases.values())
        assert sum(phases.values()) > 0.0

    def test_no_phases_omits_the_breakdown(self, monkeypatch):
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        report = run_perf(quick=True, methods=("sqlb",), phases=False)
        assert "phases" not in report["cells"]["tiny_captive/sqlb"]

    def test_profile_run_rejects_unknown_cell(self):
        with pytest.raises(ValueError):
            profile_run("no_such_cell")

    def test_profile_run_reports_hot_functions(self, monkeypatch):
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        text = profile_run("tiny_captive", top=5)
        assert "cumulative" in text
        assert "_process_arrival" in text


class TestCompareReports:
    def test_passes_within_tolerance(self):
        baseline = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 1000}})
        current = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 800}})
        assert compare_reports(current, baseline, tolerance=0.30) == []

    def test_flags_regression_beyond_tolerance(self):
        baseline = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 1000}})
        current = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 500}})
        problems = compare_reports(current, baseline, tolerance=0.30)
        assert len(problems) == 1
        assert "a/sqlb" in problems[0]

    def test_only_shared_cells_are_compared(self):
        baseline = report_with(
            {
                "a/sqlb": {"queries": 1, "seconds": 1, "qps": 1000},
                "b/sqlb": {"queries": 1, "seconds": 1, "qps": 1000},
            }
        )
        current = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 990}})
        assert compare_reports(current, baseline) == []

    def test_disjoint_cells_is_an_error_not_a_pass(self):
        baseline = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 1000}})
        current = report_with({"b/sqlb": {"queries": 1, "seconds": 1, "qps": 1000}})
        problems = compare_reports(current, baseline)
        assert problems and "no overlapping cells" in problems[0]

    def test_rejects_nonsense_tolerance(self):
        report = report_with({})
        with pytest.raises(ValueError):
            compare_reports(report, report, tolerance=0.0)
        with pytest.raises(ValueError):
            compare_reports(report, report, tolerance=1.5)


class TestPerfCli:
    def test_parses_defaults(self):
        args = cli.build_parser().parse_args(["perf"])
        assert args.command == "perf"
        assert not args.quick
        assert args.tolerance == pytest.approx(0.30)
        assert args.out is None and args.check is None

    def test_check_exits_nonzero_on_regression(
        self, monkeypatch, tmp_path, capsys
    ):
        baseline = report_with(
            {"tiny_captive/sqlb": {"queries": 1, "seconds": 1, "qps": 10.0e9}}
        )
        baseline_path = tmp_path / "baseline.json"
        write_report(baseline, str(baseline_path))
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        monkeypatch.setattr(
            cli,
            "run_perf",
            lambda quick, repeats, phases=True: run_perf(
                quick, methods=("sqlb",), repeats=repeats, phases=phases
            ),
        )
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["perf", "--quick", "--check", str(baseline_path)])
        assert "regression" in str(excinfo.value)

    def test_check_passes_against_committed_style_baseline(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        monkeypatch.setattr(
            cli,
            "run_perf",
            lambda quick, repeats, phases=True: run_perf(
                quick, methods=("sqlb",), repeats=repeats, phases=phases
            ),
        )
        fresh = run_perf(quick=True, methods=("sqlb",))
        baseline_path = tmp_path / "baseline.json"
        write_report(fresh, str(baseline_path))
        out_path = tmp_path / "current.json"
        assert (
            cli.main(
                [
                    "perf",
                    "--quick",
                    "--check",
                    str(baseline_path),
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "no regression" in printed
        assert out_path.exists()

    def test_missing_baseline_is_a_clean_error(self, monkeypatch):
        monkeypatch.setattr(perf, "PERF_MATRIX", TINY_MATRIX)
        monkeypatch.setattr(
            cli,
            "run_perf",
            lambda quick, repeats, phases=True: run_perf(
                quick, methods=("sqlb",), repeats=repeats, phases=phases
            ),
        )
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["perf", "--quick", "--check", "/nonexistent.json"])
        assert "cannot read baseline" in str(excinfo.value)


class TestCommittedBaseline:
    def test_bench_engine_json_matches_the_standard_matrix(self):
        """The committed baseline stays in sync with PERF_MATRIX."""
        baseline = load_report(
            str(Path(__file__).parents[2] / "BENCH_engine.json")
        )
        assert baseline["engine_version"] == ENGINE_VERSION
        expected = {
            f"{cell.name}/{method}"
            for cell in PERF_MATRIX
            for method in ("sqlb", "capacity", "mariposa")
        }
        assert set(baseline["cells"]) == expected


class TestModeMixing:
    def test_full_run_against_quick_baseline_is_flagged(self):
        baseline = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 1000}})
        baseline["mode"] = "quick"
        current = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 1000}})
        problems = compare_reports(current, baseline)
        assert problems and "quick-mode" in problems[0]

    def test_quick_run_against_full_baseline_is_fine(self):
        baseline = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 1000}})
        current = report_with({"a/sqlb": {"queries": 1, "seconds": 1, "qps": 1000}})
        current["mode"] = "quick"
        assert compare_reports(current, baseline) == []
