"""Tests for the experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.harness import (
    MethodAverages,
    average_series,
    run_method_family,
    run_repeated,
)
from repro.simulation.config import tiny_config


@pytest.fixture(scope="module")
def family():
    return run_method_family(
        tiny_config(duration=60.0), ("sqlb", "capacity"), (1, 2)
    )


class TestRunRepeated:
    def test_one_result_per_seed(self):
        results = run_repeated(tiny_config(duration=40.0), "sqlb", (1, 2))
        assert len(results) == 2
        assert results[0].seed == 1
        assert results[1].seed == 2

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_repeated(tiny_config(), "sqlb", ())


class TestAverageSeries:
    def test_averages_across_repetitions(self):
        results = run_repeated(tiny_config(duration=60.0), "sqlb", (1, 2))
        averaged = average_series(results, "utilization_mean")
        manual = np.nanmean(
            np.vstack([r.series("utilization_mean") for r in results]),
            axis=0,
        )
        assert np.allclose(averaged, manual, equal_nan=True)


class TestRunMethodFamily:
    def test_returns_averages_per_method(self, family):
        assert set(family) == {"sqlb", "capacity"}
        assert isinstance(family["sqlb"], MethodAverages)
        assert len(family["sqlb"].results) == 2

    def test_memoises_identical_requests(self, family):
        again = run_method_family(
            tiny_config(duration=60.0), ("sqlb", "capacity"), (1, 2)
        )
        assert again is family

    def test_method_averages_helpers(self, family):
        averages = family["sqlb"]
        assert averages.times().size > 0
        assert averages.series("utilization_mean").size == (
            averages.times().size
        )
        assert averages.response_time() > 0
        assert averages.provider_departure_fraction() == 0.0
        assert averages.consumer_departure_fraction() == 0.0
