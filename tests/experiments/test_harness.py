"""Tests for the experiment harness."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.experiments.harness import (
    DEFAULT_SEEDS,
    PAPER_SEEDS,
    MethodAverages,
    average_series,
    run_method_family,
    run_repeated,
)
from repro.simulation.config import tiny_config


class TestSeedSets:
    def test_paper_seeds_are_nb_repeat_10(self):
        assert len(PAPER_SEEDS) == 10
        assert len(set(PAPER_SEEDS)) == 10

    def test_paper_seeds_extend_the_default_set(self):
        """Paper-strength sweeps must reuse every default-seed run
        already sitting in a store, so the sets must nest."""
        assert PAPER_SEEDS[: len(DEFAULT_SEEDS)] == DEFAULT_SEEDS


@pytest.fixture(scope="module")
def family():
    return run_method_family(
        tiny_config(duration=60.0), ("sqlb", "capacity"), (1, 2)
    )


class TestRunRepeated:
    def test_one_result_per_seed(self):
        results = run_repeated(tiny_config(duration=40.0), "sqlb", (1, 2))
        assert len(results) == 2
        assert results[0].seed == 1
        assert results[1].seed == 2

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_repeated(tiny_config(), "sqlb", ())


class _StubResult:
    """Just enough of a SimulationResult for average_series."""

    def __init__(self, values):
        self._values = np.asarray(values, dtype=float)

    def series(self, name):
        return self._values


class TestAverageSeries:
    def test_averages_across_repetitions(self):
        results = run_repeated(tiny_config(duration=60.0), "sqlb", (1, 2))
        averaged = average_series(results, "utilization_mean")
        manual = np.nanmean(
            np.vstack([r.series("utilization_mean") for r in results]),
            axis=0,
        )
        assert np.allclose(averaged, manual, equal_nan=True)

    def test_nan_samples_average_over_remaining_repetitions(self):
        results = [
            _StubResult([1.0, np.nan, 3.0]),
            _StubResult([3.0, 4.0, np.nan]),
        ]
        averaged = average_series(results, "any")
        np.testing.assert_array_equal(averaged, [2.0, 4.0, 3.0])

    def test_all_nan_sample_stays_nan_without_warning(self):
        results = [
            _StubResult([np.nan, 1.0]),
            _StubResult([np.nan, 3.0]),
        ]
        with warnings.catch_warnings():
            # Promote the 'Mean of empty slice' RuntimeWarning (and any
            # other) to an error: average_series must stay silent.
            warnings.simplefilter("error")
            averaged = average_series(results, "any")
        assert np.isnan(averaged[0])
        assert averaged[1] == 2.0

    def test_random_inputs_never_leave_observed_range(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            stack = rng.uniform(0.0, 1.0, size=(3, 8))
            stack[rng.uniform(size=stack.shape) < 0.3] = np.nan
            averaged = average_series(
                [_StubResult(row) for row in stack], "any"
            )
            finite = averaged[np.isfinite(averaged)]
            assert (finite >= np.nanmin(stack) - 1e-12).all()
            assert (finite <= np.nanmax(stack) + 1e-12).all()
            all_nan_columns = np.isnan(stack).all(axis=0)
            assert (np.isnan(averaged) == all_nan_columns).all()


class TestRunMethodFamily:
    def test_returns_averages_per_method(self, family):
        assert set(family) == {"sqlb", "capacity"}
        assert isinstance(family["sqlb"], MethodAverages)
        assert len(family["sqlb"].results) == 2

    def test_memoises_identical_requests(self, family):
        again = run_method_family(
            tiny_config(duration=60.0), ("sqlb", "capacity"), (1, 2)
        )
        assert again is family

    def test_method_averages_helpers(self, family):
        averages = family["sqlb"]
        assert averages.times().size > 0
        assert averages.series("utilization_mean").size == (
            averages.times().size
        )
        assert averages.response_time() > 0
        assert averages.provider_departure_fraction() == 0.0
        assert averages.consumer_departure_fraction() == 0.0
