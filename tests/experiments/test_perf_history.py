"""Perf history JSONL: append-only rows, torn-tail tolerance, trend."""

from __future__ import annotations

import json

from repro.experiments.perf import (
    append_history,
    format_history,
    history_row,
    load_history,
)


def report(aggregate=5000.0, mode="quick"):
    return {
        "engine_version": "1",
        "mode": mode,
        "python": "3.11.7",
        "numpy": "1.26.0",
        "seed": 1,
        "repeats": 2,
        "aggregate_qps": aggregate,
        "cells": {
            "captive_small/sqlb": {
                "queries": 100,
                "seconds": 0.02,
                "qps": aggregate,
                "phases": {"arrivals": 0.01},
            }
        },
    }


class TestHistoryRow:
    def test_keeps_qps_and_phases_drops_machine_noise(self):
        row = history_row(report(), now=123.0)
        assert row["t"] == 123.0
        assert row["aggregate_qps"] == 5000.0
        cell = row["cells"]["captive_small/sqlb"]
        assert cell == {"qps": 5000.0, "phases": {"arrivals": 0.01}}
        assert "python" not in row
        assert "queries" not in cell

    def test_default_timestamp_is_now(self):
        assert history_row(report())["t"] > 1.7e9


class TestAppendAndLoad:
    def test_rows_accumulate_in_order(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(report(1000.0), str(path), now=1.0)
        append_history(report(2000.0), str(path), now=2.0)
        rows = load_history(str(path))
        assert [row["aggregate_qps"] for row in rows] == [1000.0, 2000.0]

    def test_torn_tail_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(report(), str(path), now=1.0)
        with open(path, "a") as handle:
            handle.write("\n")
            handle.write('{"t": 2.0, "aggregate')  # crashed writer
        assert len(load_history(str(path))) == 1

    def test_rows_without_cells_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"t": 1.0}) + "\n")
        assert load_history(str(path)) == []

    def test_committed_seed_row_loads(self):
        # BENCH_history.jsonl is seeded from the committed baseline
        # with a null timestamp; it must parse and render forever.
        from pathlib import Path

        rows = load_history(
            str(Path(__file__).parents[2] / "BENCH_history.jsonl")
        )
        assert rows
        assert rows[0]["t"] is None
        assert rows[0]["source"] == "BENCH_engine.json"
        assert rows[0]["aggregate_qps"] > 0
        assert "baseline" in format_history(rows)


class TestFormatHistory:
    def test_delta_compares_same_mode_only(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(report(1000.0, mode="quick"), str(path), now=1.0)
        append_history(report(9000.0, mode="full"), str(path), now=2.0)
        append_history(report(1100.0, mode="quick"), str(path), now=3.0)
        text = format_history(load_history(str(path)))
        # 1100 vs 1000 (same mode) = +10%, never vs the full row.
        assert "+10%" in text
        lines = text.splitlines()
        assert len(lines) == 4  # header + 3 rows

    def test_empty_history_renders(self):
        assert format_history([]) == "no perf history rows"
