"""Golden determinism tests.

Small-config end-of-run scalars are frozen here for two methods; any
drift in the engine's numerics (an RNG stream reordering, a changed
arithmetic order, a serialization bug) trips these before it can
silently invalidate cached results or cross-method comparisons.  The
same scalars are asserted bit-stable across the serial path, the
process-pool path, and a store round-trip.

If a change *intentionally* alters simulation numerics, update the
goldens and bump ``repro.simulation.engine.ENGINE_VERSION`` in the same
commit so stale store entries are invalidated too.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.experiments.executor import ExperimentExecutor, SimulationJob
from repro.experiments.store import ResultStore
from repro.simulation.config import DepartureRules, WorkloadSpec, tiny_config
from repro.simulation.engine import run_simulation

#: (queries_issued, queries_served, response_time_post_warmup) of
#: tiny_config(duration=60.0) at seed 5 — captive, so zero departures.
CAPTIVE_GOLDEN = {
    "sqlb": (227, 227, 7.9889393978853285),
    "capacity": (227, 227, 3.0838577204174573),
}

#: (queries_issued, provider_departures, consumer_departures) of the
#: autonomous 100 %-workload run below at seed 5.
AUTONOMOUS_GOLDEN = {
    "sqlb": (663, 1, 2),
    "capacity": (201, 16, 8),
}

#: SHA-256 over the *entire* sampled output (time axis + every series,
#: raw float64 bytes) of the two golden configs at seed 5, recorded
#: before the engine's hot-path overhaul (PR 3).  Unlike the scalar
#: goldens above, these trip on a single-ulp drift in any sample of any
#: series — the strongest practical bit-identity check.
SERIES_SHA256 = {
    ("captive", "sqlb"):
        "ed01bf370eb314688efd21fdc17658306e149634f040aadce6794acd972352f4",
    ("captive", "capacity"):
        "0a929708a4c0071b6bbe8ebe6f0631499283b3ecf9f0fad1d97d8644163db54e",
    ("captive", "mariposa"):
        "88ba7711aa4fe6c41a7f124966565f96128657c383353a6a30edc4ac0068ddbf",
    ("autonomous", "sqlb"):
        "668b18ba87b72be7179d34fce2d2fefaf9507e7deeaa07ca937356f1e3ccea6b",
    ("autonomous", "capacity"):
        "7300c47e0e4ea68b144b11ca34861ebe9908fa8a77a4f3f8e4732faaa1c1c0a5",
    ("autonomous", "mariposa"):
        "4231cc7a13e8069e0ef53365c36fa63451f76f0cdc81aaf96eb8593f34eaf798",
}


def _series_fingerprint(result) -> str:
    digest = hashlib.sha256()
    digest.update(result.times().tobytes())
    for name in sorted(result.collector.names):
        digest.update(name.encode())
        digest.update(result.series(name).tobytes())
    return digest.hexdigest()


def captive_config():
    return tiny_config(duration=60.0)


def autonomous_config():
    return tiny_config(
        duration=120.0, workload=WorkloadSpec.fixed(1.0)
    ).with_departures(DepartureRules.autonomous(True))


@pytest.mark.parametrize("method", sorted(CAPTIVE_GOLDEN))
def test_captive_scalars_match_golden(method):
    issued, served, response = CAPTIVE_GOLDEN[method]
    result = run_simulation(captive_config(), method, seed=5)
    assert result.queries_issued == issued
    assert result.queries_served == served
    assert result.response_time_post_warmup == response
    assert len(result.departures) == 0


@pytest.mark.parametrize("method", sorted(AUTONOMOUS_GOLDEN))
def test_autonomous_departure_counts_match_golden(method):
    issued, providers, consumers = AUTONOMOUS_GOLDEN[method]
    result = run_simulation(autonomous_config(), method, seed=5)
    assert result.queries_issued == issued
    assert (
        sum(1 for d in result.departures if d.kind == "provider") == providers
    )
    assert (
        sum(1 for d in result.departures if d.kind == "consumer") == consumers
    )


@pytest.mark.parametrize(
    ("label", "method"), sorted(SERIES_SHA256)
)
def test_full_series_match_pre_overhaul_fingerprints(label, method):
    """Every sampled series is bit-identical to the pre-refactor engine."""
    config = captive_config() if label == "captive" else autonomous_config()
    result = run_simulation(config, method, seed=5)
    assert _series_fingerprint(result) == SERIES_SHA256[(label, method)]


@pytest.mark.parametrize("method", sorted(CAPTIVE_GOLDEN))
def test_serial_parallel_and_store_agree_bitwise(method, tmp_path):
    """The three execution paths must be indistinguishable."""
    config = captive_config()
    job = [SimulationJob(config, method, 5)]

    serial = ExperimentExecutor(workers=1).run(job)[0]
    # Two jobs so the pool path is actually exercised for this method.
    parallel = ExperimentExecutor(workers=2).run(
        [SimulationJob(config, method, 5), SimulationJob(config, method, 6)]
    )[0]
    store = ResultStore(tmp_path)
    store.put(serial)
    loaded = store.get(config, method, 5)

    for result in (serial, parallel, loaded):
        golden = CAPTIVE_GOLDEN[method]
        assert result.queries_issued == golden[0]
        assert result.queries_served == golden[1]
        assert result.response_time_post_warmup == golden[2]

    for other in (parallel, loaded):
        np.testing.assert_array_equal(serial.times(), other.times())
        for name in serial.collector.names:
            assert np.array_equal(
                serial.series(name), other.series(name), equal_nan=True
            ), name
