"""Golden determinism tests.

Small-config end-of-run scalars are frozen here for two methods; any
drift in the engine's numerics (an RNG stream reordering, a changed
arithmetic order, a serialization bug) trips these before it can
silently invalidate cached results or cross-method comparisons.  The
same scalars are asserted bit-stable across the serial path, the
process-pool path, and a store round-trip.

If a change *intentionally* alters simulation numerics, update the
goldens and bump ``repro.simulation.engine.ENGINE_VERSION`` in the same
commit so stale store entries are invalidated too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.executor import ExperimentExecutor, SimulationJob
from repro.experiments.store import ResultStore
from repro.simulation.config import DepartureRules, WorkloadSpec, tiny_config
from repro.simulation.engine import run_simulation

#: (queries_issued, queries_served, response_time_post_warmup) of
#: tiny_config(duration=60.0) at seed 5 — captive, so zero departures.
CAPTIVE_GOLDEN = {
    "sqlb": (227, 227, 7.9889393978853285),
    "capacity": (227, 227, 3.0838577204174573),
}

#: (queries_issued, provider_departures, consumer_departures) of the
#: autonomous 100 %-workload run below at seed 5.
AUTONOMOUS_GOLDEN = {
    "sqlb": (663, 1, 2),
    "capacity": (201, 16, 8),
}


def captive_config():
    return tiny_config(duration=60.0)


def autonomous_config():
    return tiny_config(
        duration=120.0, workload=WorkloadSpec.fixed(1.0)
    ).with_departures(DepartureRules.autonomous(True))


@pytest.mark.parametrize("method", sorted(CAPTIVE_GOLDEN))
def test_captive_scalars_match_golden(method):
    issued, served, response = CAPTIVE_GOLDEN[method]
    result = run_simulation(captive_config(), method, seed=5)
    assert result.queries_issued == issued
    assert result.queries_served == served
    assert result.response_time_post_warmup == response
    assert len(result.departures) == 0


@pytest.mark.parametrize("method", sorted(AUTONOMOUS_GOLDEN))
def test_autonomous_departure_counts_match_golden(method):
    issued, providers, consumers = AUTONOMOUS_GOLDEN[method]
    result = run_simulation(autonomous_config(), method, seed=5)
    assert result.queries_issued == issued
    assert (
        sum(1 for d in result.departures if d.kind == "provider") == providers
    )
    assert (
        sum(1 for d in result.departures if d.kind == "consumer") == consumers
    )


@pytest.mark.parametrize("method", sorted(CAPTIVE_GOLDEN))
def test_serial_parallel_and_store_agree_bitwise(method, tmp_path):
    """The three execution paths must be indistinguishable."""
    config = captive_config()
    job = [SimulationJob(config, method, 5)]

    serial = ExperimentExecutor(workers=1).run(job)[0]
    # Two jobs so the pool path is actually exercised for this method.
    parallel = ExperimentExecutor(workers=2).run(
        [SimulationJob(config, method, 5), SimulationJob(config, method, 6)]
    )[0]
    store = ResultStore(tmp_path)
    store.put(serial)
    loaded = store.get(config, method, 5)

    for result in (serial, parallel, loaded):
        golden = CAPTIVE_GOLDEN[method]
        assert result.queries_issued == golden[0]
        assert result.queries_served == golden[1]
        assert result.response_time_post_warmup == golden[2]

    for other in (parallel, loaded):
        np.testing.assert_array_equal(serial.times(), other.times())
        for name in serial.collector.names:
            assert np.array_equal(
                serial.series(name), other.series(name), equal_nan=True
            ), name
