"""Tests for the captive-participant experiment family."""

from __future__ import annotations

import pytest

from repro.experiments.captive import (
    FIGURE4_SERIES,
    captive_ramp,
    captive_ramp_config,
    response_time_curve,
)
from repro.simulation.config import DepartureRules, tiny_config


@pytest.fixture(scope="module")
def ramp():
    return captive_ramp(
        config=tiny_config(duration=80.0),
        methods=("sqlb", "capacity"),
        seeds=(1,),
    )


class TestCaptiveRampConfig:
    def test_forces_captivity_and_ramp(self):
        config = captive_ramp_config(tiny_config())
        assert config.departures == DepartureRules.captive()
        assert config.workload.kind == "ramp"
        assert config.workload.start_fraction == pytest.approx(0.30)

    def test_default_base_is_scaled_config(self):
        config = captive_ramp_config()
        assert config.n_providers == 80


class TestCaptiveRamp:
    def test_all_figure4_series_are_available(self, ramp):
        for figure, series_name in FIGURE4_SERIES.items():
            for method in ("sqlb", "capacity"):
                series = ramp[method].series(series_name)
                assert series.size > 0, f"figure {figure} empty"

    def test_methods_share_time_axis(self, ramp):
        assert (
            ramp["sqlb"].times().tolist()
            == ramp["capacity"].times().tolist()
        )


class TestResponseTimeCurve:
    def test_curve_shape_and_factors(self):
        curve = response_time_curve(
            config=tiny_config(duration=80.0),
            methods=("sqlb", "capacity"),
            seeds=(1,),
            workloads=(0.4, 0.8),
        )
        assert curve.workloads == (0.4, 0.8)
        assert curve.response_times["sqlb"].shape == (2,)
        factors = curve.factor_vs("capacity")
        assert factors["capacity"].tolist() == pytest.approx([1.0, 1.0])
        assert (factors["sqlb"] > 0).all()
