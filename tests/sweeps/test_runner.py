"""Tests for shard execution, manifests, merging, and reporting."""

from __future__ import annotations

import json

import pytest

from repro.experiments.executor import (
    ExperimentExecutor,
    set_default_executor,
)
from repro.experiments.store import ResultStore
from repro.simulation.config import tiny_config
from repro.simulation.engine import ENGINE_VERSION
from repro.sweeps.aggregate import (
    format_sweep_table,
    merge_stores,
    sweep_summary,
)
from repro.sweeps.runner import SweepRunner, load_manifests, manifest_directory
from repro.sweeps.spec import SweepSpec


@pytest.fixture(autouse=True)
def _reset_default_executor():
    yield
    set_default_executor(None)


def spec() -> SweepSpec:
    return SweepSpec(
        name="unit",
        scenarios=("captive_fixed_80", "flash_crowd"),
        methods=("sqlb", "capacity"),
        seeds=(1, 2),
        scale="tiny",
    )


def fast_base():
    return tiny_config(duration=40.0)


def executor_for(path) -> ExperimentExecutor:
    return ExperimentExecutor(workers=1, store=ResultStore(path))


class TestRunShard:
    def test_cold_then_warm(self, tmp_path):
        runner = SweepRunner(executor_for(tmp_path))
        cold = runner.run_shard(spec(), 0, 1, base=fast_base())
        assert cold.jobs == 8
        assert cold.simulated == 8
        assert cold.store_hits == 0
        assert not cold.all_store_hits

        warm = SweepRunner(executor_for(tmp_path)).run_shard(
            spec(), 0, 1, base=fast_base()
        )
        assert warm.simulated == 0
        assert warm.store_hits == 8
        assert warm.all_store_hits

    def test_interrupted_sweep_resumes_without_resimulation(self, tmp_path):
        """Only the jobs missing from the store are simulated."""
        first = executor_for(tmp_path)
        SweepRunner(first).run_shard(spec(), 0, 2, base=fast_base())
        assert first.simulations_run == 4

        # The 'interrupted' full run: shard 0's jobs are already stored.
        resumed = executor_for(tmp_path)
        report = SweepRunner(resumed).run_shard(spec(), 0, 1, base=fast_base())
        assert report.jobs == 8
        assert report.store_hits == 4
        assert report.simulated == 4
        assert resumed.simulations_run == 4

    def test_manifest_contents(self, tmp_path):
        runner = SweepRunner(executor_for(tmp_path))
        report = runner.run_shard(spec(), 1, 2, base=fast_base())
        manifest = json.loads(report.manifest_path.read_text())
        assert manifest["sweep"] == "unit"
        assert manifest["spec_hash"] == spec().spec_hash()
        assert manifest["engine_version"] == ENGINE_VERSION
        assert manifest["shard_index"] == 1
        assert manifest["shard_count"] == 2
        assert manifest["completed"] is True
        assert len(manifest["jobs"]) == 4
        for entry in manifest["jobs"]:
            assert entry["state"] == "simulated"
            assert len(entry["key"]) == 64
        # The spec payload round-trips into the identical spec.
        rebuilt = SweepSpec(**manifest["spec"])
        assert rebuilt == spec()

    def test_warm_manifest_shows_all_store_hits(self, tmp_path):
        """Acceptance: a warm re-run's manifest is all store_hit."""
        SweepRunner(executor_for(tmp_path)).run_shard(
            spec(), 0, 1, base=fast_base()
        )
        report = SweepRunner(executor_for(tmp_path)).run_shard(
            spec(), 0, 1, base=fast_base()
        )
        manifest = json.loads(report.manifest_path.read_text())
        assert all(
            entry["state"] == "store_hit" for entry in manifest["jobs"]
        )

    def test_storeless_executor_runs_but_writes_no_manifest(self, tmp_path):
        runner = SweepRunner(ExperimentExecutor(workers=1))
        report = runner.run_shard(
            SweepSpec(
                name="nostore",
                scenarios=("captive_fixed_80",),
                methods=("capacity",),
                seeds=(1,),
                scale="tiny",
            ),
            base=fast_base(),
        )
        assert report.simulated == 1
        assert report.manifest_path is None

    def test_corrupt_store_entry_is_reported_as_simulated(self, tmp_path):
        """An unreadable entry is a miss for the executor, so the
        manifest must not claim it was a store hit."""
        first = executor_for(tmp_path)
        small = SweepSpec(
            name="corrupt",
            scenarios=("captive_fixed_80",),
            methods=("sqlb", "capacity"),
            seeds=(1,),
            scale="tiny",
        )
        SweepRunner(first).run_shard(small, base=fast_base())

        # Truncate one entry's numeric payload in place.
        victim = sorted(tmp_path.glob("*.npz"))[0]
        victim.write_bytes(b"not an npz archive")

        warm = executor_for(tmp_path)
        report = SweepRunner(warm).run_shard(small, base=fast_base())
        assert report.simulated == 1
        assert report.store_hits == 1
        assert not report.all_store_hits
        assert warm.simulations_run == 1
        manifest = json.loads(report.manifest_path.read_text())
        assert sorted(e["state"] for e in manifest["jobs"]) == [
            "simulated",
            "store_hit",
        ]

    def test_base_override_gets_its_own_manifest(self, tmp_path):
        """A run with a base-config override must not overwrite the
        manifest of the same spec run without the override."""
        small = SweepSpec(
            name="override",
            scenarios=("captive_fixed_80",),
            methods=("capacity",),
            seeds=(1,),
            scale="tiny",
        )
        plain = SweepRunner(executor_for(tmp_path)).run_shard(small)
        overridden = SweepRunner(executor_for(tmp_path)).run_shard(
            small, base=fast_base()
        )
        assert plain.manifest_path != overridden.manifest_path
        assert plain.manifest_path.is_file()
        assert overridden.manifest_path.is_file()
        plain_manifest = json.loads(plain.manifest_path.read_text())
        over_manifest = json.loads(overridden.manifest_path.read_text())
        assert (
            plain_manifest["environment_hash"]
            != over_manifest["environment_hash"]
        )
        # Same spec + same base ⇒ same identity (cross-machine match).
        repeat = SweepRunner(executor_for(tmp_path)).run_shard(
            small, base=fast_base()
        )
        assert repeat.manifest_path == overridden.manifest_path

    def test_load_manifests_skips_garbage(self, tmp_path):
        runner = SweepRunner(executor_for(tmp_path))
        runner.run_shard(spec(), 0, 1, base=fast_base())
        directory = manifest_directory(tmp_path)
        (directory / "broken.json").write_text("{not json")
        (directory / "schema.json").write_text('{"no": "jobs"}')
        (directory / "future.json").write_text('{"format": 99, "jobs": []}')
        manifests = load_manifests(tmp_path)
        assert len(manifests) == 1
        assert load_manifests(tmp_path / "missing") == []


class TestMergeAndReport:
    def test_two_machine_merge_reports_identically(self, tmp_path):
        """Acceptance: shard 0 + shard 1 (run into *separate* stores,
        as on two machines), merged, report identical to an unsharded
        run — with zero new simulations."""
        machine_a = tmp_path / "machine_a"
        machine_b = tmp_path / "machine_b"
        merged = tmp_path / "merged"
        reference = tmp_path / "reference"

        SweepRunner(executor_for(machine_a)).run_shard(
            spec(), 0, 2, base=fast_base()
        )
        SweepRunner(executor_for(machine_b)).run_shard(
            spec(), 1, 2, base=fast_base()
        )
        report = merge_stores([machine_a, machine_b], merged)
        assert report.entries_copied == 8
        assert report.manifests_copied == 2

        # Reporting from the merged store simulates nothing.
        merged_executor = executor_for(merged)
        merged_table = format_sweep_table(
            sweep_summary(spec(), executor=merged_executor, base=fast_base())
        )
        assert merged_executor.simulations_run == 0

        unsharded = executor_for(reference)
        SweepRunner(unsharded).run_shard(spec(), 0, 1, base=fast_base())
        reference_table = format_sweep_table(
            sweep_summary(spec(), executor=unsharded, base=fast_base())
        )
        assert merged_table == reference_table

    def test_merge_rejects_missing_sources(self, tmp_path):
        existing = tmp_path / "exists"
        existing.mkdir()
        with pytest.raises(FileNotFoundError, match="typo"):
            merge_stores(
                [existing, tmp_path / "typo"], tmp_path / "dest"
            )

    def test_merge_is_idempotent_and_self_merge_is_noop(self, tmp_path):
        store_dir = tmp_path / "store"
        SweepRunner(executor_for(store_dir)).run_shard(
            SweepSpec(
                name="idem",
                scenarios=("captive_fixed_80",),
                methods=("capacity",),
                seeds=(1,),
                scale="tiny",
            ),
            base=fast_base(),
        )
        dest = tmp_path / "dest"
        first = merge_stores([store_dir], dest)
        assert first.entries_copied == 1
        second = merge_stores([store_dir], dest)
        assert second.entries_copied == 0
        assert second.entries_skipped == 1
        self_merge = merge_stores([dest], dest)
        assert self_merge.entries_copied == 0

    def test_summary_has_quantiles_per_cell(self, tmp_path):
        executor = executor_for(tmp_path)
        summaries = sweep_summary(spec(), executor=executor, base=fast_base())
        assert len(summaries) == 4  # 2 scenarios × 2 methods
        for row in summaries:
            assert row.seeds == 2
            assert set(row.response_time_quantiles) == {0.5, 0.9}
            low, high = (
                row.response_time_quantiles[0.5],
                row.response_time_quantiles[0.9],
            )
            assert low <= high
        table = format_sweep_table(summaries)
        assert "rt_p50(s)" in table and "rt_p90(s)" in table
        assert "flash_crowd" in table


class TestManifestStatus:
    def test_shared_parser_counts_shard_manifests(self, tmp_path):
        from repro.sweeps.runner import manifest_status

        runner = SweepRunner(executor_for(tmp_path))
        runner.run_shard(spec(), 1, 2, base=fast_base())
        [row] = manifest_status(load_manifests(tmp_path))
        assert row["sweep"] == "unit"
        assert row["spec_hash"] == spec().spec_hash()
        assert row["shard_index"] == 1
        assert row["shard_count"] == 2
        assert row["worker"] is None
        assert row["jobs"] == 4
        assert row["simulated"] == 4
        assert row["store_hits"] == 0
        assert row["engine_version"] == ENGINE_VERSION
        assert not row["stale"]
        assert row["path"].endswith(".json")

    def test_stale_engine_is_flagged(self, tmp_path):
        from repro.sweeps.runner import manifest_status

        runner = SweepRunner(executor_for(tmp_path))
        report = runner.run_shard(spec(), 0, 2, base=fast_base())
        manifest = json.loads(report.manifest_path.read_text())
        manifest["engine_version"] = "0-ancient"
        report.manifest_path.write_text(json.dumps(manifest))
        [row] = manifest_status(load_manifests(tmp_path))
        assert row["stale"]


class TestSingleSeedSummary:
    def test_single_seed_reports_without_warnings(self, tmp_path):
        """Satellite: one seed ⇒ p50/p90 defined, CI undefined (not
        NaN-printed, not crashed), and zero runtime warnings."""
        import math
        import warnings

        single = SweepSpec(
            name="single",
            scenarios=("captive_fixed_80",),
            methods=("capacity",),
            seeds=(1,),
            scale="tiny",
        )
        executor = executor_for(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            [row] = sweep_summary(single, executor=executor, base=fast_base())
            table = format_sweep_table([row])
        assert row.seeds == 1
        assert row.response_time_quantiles[0.5] == pytest.approx(
            row.response_time_mean
        )
        assert row.response_time_quantiles[0.9] == pytest.approx(
            row.response_time_mean
        )
        assert math.isnan(row.response_time_ci_halfwidth)
        assert "--" in table
        assert "nan" not in table

    def test_multi_seed_ci_is_defined(self, tmp_path):
        import math

        executor = executor_for(tmp_path)
        summaries = sweep_summary(spec(), executor=executor, base=fast_base())
        for row in summaries:
            assert row.seeds == 2
            assert not math.isnan(row.response_time_ci_halfwidth)
            assert row.response_time_ci_halfwidth >= 0.0
        assert "rt_ci95(s)" in format_sweep_table(summaries)


class TestCiHalfwidth:
    def test_known_value(self):
        from repro.sweeps.aggregate import ci_halfwidth

        # std(ddof=1) of (1, 3) is sqrt(2); 1.96 * sqrt(2) / sqrt(2).
        assert ci_halfwidth([1.0, 3.0]) == pytest.approx(1.96)

    def test_undefined_below_two_usable_values(self):
        import math

        from repro.sweeps.aggregate import ci_halfwidth

        assert math.isnan(ci_halfwidth([]))
        assert math.isnan(ci_halfwidth([2.5]))
        assert math.isnan(ci_halfwidth([2.5, float("nan")]))

    def test_nan_values_are_dropped(self):
        from repro.sweeps.aggregate import ci_halfwidth

        assert ci_halfwidth(
            [1.0, 3.0, float("nan")]
        ) == pytest.approx(1.96)
