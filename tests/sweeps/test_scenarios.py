"""Tests for the scenario catalog."""

from __future__ import annotations

import pytest

from repro.simulation.config import tiny_config
from repro.simulation.engine import run_simulation
from repro.sweeps.scenarios import (
    Scenario,
    available_scenarios,
    base_config,
    scenario_catalog,
)

EXPECTED = (
    "captive_ramp",
    "captive_fixed_80",
    "autonomous_full",
    "autonomous_no_overutilization",
    "flash_crowd",
    "diurnal",
    "provider_churn_stress",
    "captive_outage",
    "captive_flap",
    "autonomous_strategic",
)


class TestCatalogShape:
    def test_catalog_names_are_stable(self):
        assert available_scenarios() == EXPECTED

    def test_catalog_builds_on_every_scale(self):
        for scale in ("tiny", "scaled", "paper"):
            catalog = scenario_catalog(scale)
            assert set(catalog) == set(EXPECTED)
            for scenario in catalog.values():
                assert isinstance(scenario, Scenario)
                assert scenario.description

    def test_unknown_scale_and_scenario_raise(self):
        with pytest.raises(ValueError, match="unknown scale"):
            base_config("huge")
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_catalog("tiny", names=("captive_ramp", "nope"))

    def test_subset_preserves_requested_order(self):
        names = ("diurnal", "captive_ramp")
        assert tuple(scenario_catalog("tiny", names=names)) == names

    def test_explicit_base_config_is_respected(self):
        base = tiny_config(duration=33.0)
        catalog = scenario_catalog(base)
        for scenario in catalog.values():
            assert scenario.config.duration == 33.0


class TestScenarioSemantics:
    def test_paper_settings(self):
        catalog = scenario_catalog("scaled")
        ramp = catalog["captive_ramp"].config
        assert ramp.workload.kind == "ramp"
        assert ramp.workload.start_fraction == pytest.approx(0.30)
        assert not ramp.departures.consumers_may_leave
        assert catalog["captive_fixed_80"].config.workload.kind == "fixed"

        full = catalog["autonomous_full"].config.departures
        assert full.consumers_may_leave
        assert "overutilization" in full.provider_reasons
        no_over = catalog["autonomous_no_overutilization"].config.departures
        assert "overutilization" not in no_over.provider_reasons
        assert set(no_over.provider_reasons) == {
            "dissatisfaction",
            "starvation",
        }

    def test_new_workload_shapes(self):
        catalog = scenario_catalog("scaled")
        flash = catalog["flash_crowd"].config.workload
        assert flash.kind == "burst"
        assert flash.peak_fraction(1.0) == pytest.approx(1.0)
        diurnal = catalog["diurnal"].config.workload
        assert diurnal.kind == "piecewise"
        assert len(diurnal.points) == 5
        churn = catalog["provider_churn_stress"].config
        assert churn.workload.burst_fraction == pytest.approx(1.20)
        assert churn.departures.provider_reasons

    def test_fault_and_strategic_scenarios(self):
        catalog = scenario_catalog("scaled")
        outage = catalog["captive_outage"].config
        assert outage.faults is not None
        assert len(outage.faults.outages) == 1
        assert outage.faults.outages[0].fraction == pytest.approx(0.25)
        assert not outage.departures.consumers_may_leave
        flap = catalog["captive_flap"].config
        assert flap.faults is not None
        assert len(flap.faults.flaps) == 1
        assert flap.faults.flaps[0].period == pytest.approx(0.10)
        strategic = catalog["autonomous_strategic"].config
        assert strategic.faults is None
        assert strategic.strategic is not None
        assert strategic.strategic.mode == "exaggerate"
        assert strategic.strategic.fraction == pytest.approx(0.25)
        assert strategic.departures.consumers_may_leave


@pytest.mark.parametrize("name", EXPECTED)
def test_every_scenario_simulates(name):
    """Acceptance: each catalog entry is exercised end-to-end."""
    base = tiny_config(duration=40.0)
    config = scenario_catalog(base, names=(name,))[name].config
    result = run_simulation(config, "capacity", seed=7)
    assert result.queries_issued > 0
    workload = result.series("workload_fraction")
    assert len(workload) > 0
    # The sampled workload series follows the spec's fraction_at.
    for time, value in zip(result.times(), workload):
        assert value == config.workload.fraction_at(time, config.duration)
