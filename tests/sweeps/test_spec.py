"""Tests for SweepSpec: expansion order, hashing, shard determinism."""

from __future__ import annotations

import pytest

from repro.sweeps.spec import SweepSpec


def small_spec() -> SweepSpec:
    return SweepSpec(
        name="small",
        scenarios=("captive_fixed_80", "flash_crowd"),
        methods=("sqlb", "capacity", "mariposa"),
        seeds=(1, 2),
        scale="tiny",
    )


def catalog_spec() -> SweepSpec:
    from repro.sweeps.scenarios import available_scenarios

    return SweepSpec(
        name="full-catalog",
        scenarios=available_scenarios(),
        methods=("capacity",),
        seeds=(11, 23, 47),
        scale="tiny",
    )


class TestValidation:
    def test_rejects_empty_dimensions(self):
        with pytest.raises(ValueError, match="at least one"):
            SweepSpec(name="x", scenarios=(), methods=("sqlb",), seeds=(1,))
        with pytest.raises(ValueError, match="needs a name"):
            SweepSpec(name="", scenarios=("diurnal",), seeds=(1,))

    def test_rejects_unknowns(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            SweepSpec(name="x", scenarios=("warp_drive",), seeds=(1,))
        with pytest.raises(ValueError, match="unknown methods"):
            SweepSpec(
                name="x",
                scenarios=("diurnal",),
                methods=("oracle",),
                seeds=(1,),
            )
        with pytest.raises(ValueError, match="unknown scale"):
            SweepSpec(
                name="x", scenarios=("diurnal",), seeds=(1,), scale="huge"
            )

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate seed"):
            SweepSpec(name="x", scenarios=("diurnal",), seeds=(1, 1))
        with pytest.raises(ValueError, match="duplicate scenario"):
            SweepSpec(name="x", scenarios=("diurnal", "diurnal"), seeds=(1,))

    def test_shard_bounds(self):
        spec = small_spec()
        with pytest.raises(ValueError):
            spec.shard(0, 0)
        with pytest.raises(ValueError):
            spec.shard(2, 2)
        with pytest.raises(ValueError):
            spec.shard(-1, 2)


class TestExpansion:
    def test_order_is_scenario_major_then_method_then_seed(self):
        jobs = small_spec().expand()
        cells = [(j.scenario, j.method, j.seed) for j in jobs]
        assert cells == [
            (scenario, method, seed)
            for scenario in ("captive_fixed_80", "flash_crowd")
            for method in ("sqlb", "capacity", "mariposa")
            for seed in (1, 2)
        ]

    def test_expansion_is_deterministic(self):
        assert small_spec().expand() == small_spec().expand()

    def test_scenario_configs_differ_by_scenario_only(self):
        jobs = small_spec().expand()
        by_scenario = {}
        for job in jobs:
            by_scenario.setdefault(job.scenario, set()).add(job.job.config)
        for configs in by_scenario.values():
            assert len(configs) == 1

    def test_spec_hash_tracks_content(self):
        base = small_spec()
        assert base.spec_hash() == small_spec().spec_hash()
        renamed = SweepSpec(
            name="other",
            scenarios=base.scenarios,
            methods=base.methods,
            seeds=base.seeds,
            scale=base.scale,
        )
        assert renamed.spec_hash() != base.spec_hash()
        reseeded = SweepSpec(
            name=base.name,
            scenarios=base.scenarios,
            methods=base.methods,
            seeds=(1, 3),
            scale=base.scale,
        )
        assert reseeded.spec_hash() != base.spec_hash()


class TestShardDeterminism:
    """Acceptance: shards 0..n-1 partition the unsharded job list."""

    @pytest.mark.parametrize(
        "spec_builder, shard_count",
        [
            (small_spec, 1),
            (small_spec, 2),
            (small_spec, 3),
            (small_spec, 5),
            (small_spec, 12),  # one job per shard
            (catalog_spec, 2),
            (catalog_spec, 4),
            (catalog_spec, 7),
        ],
    )
    def test_shards_partition_the_expansion(self, spec_builder, shard_count):
        spec = spec_builder()
        full = spec.expand()
        shards = [spec.shard(k, shard_count) for k in range(shard_count)]

        # Disjoint: no job appears in two shards.
        seen = []
        for shard in shards:
            seen.extend(shard)
        assert len(seen) == len(full)
        assert len(set(seen)) == len(set(full)) == len(full)

        # Union equals the unsharded list (round-robin interleave).
        reassembled = [None] * len(full)
        for index, shard in enumerate(shards):
            reassembled[index::shard_count] = shard
        assert reassembled == full

    def test_more_shards_than_jobs_leaves_empties(self):
        spec = SweepSpec(
            name="tiny",
            scenarios=("diurnal",),
            methods=("capacity",),
            seeds=(1,),
            scale="tiny",
        )
        shards = [spec.shard(k, 4) for k in range(4)]
        assert [len(s) for s in shards] == [1, 0, 0, 0]
