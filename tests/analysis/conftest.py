"""Shared fixtures: one warm sweep store for the whole analysis suite.

The analysis layer is read-only by contract, so every test can share a
single store populated once — the suite then exercises manifests, series
extraction, figures, and comparison against identical bytes, which is
exactly the regime the determinism guarantees are about.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.sweeps.runner import SweepRunner
from repro.sweeps.spec import SweepSpec

#: The grid the shared store holds: two scenarios (one autonomous, so
#: departure metrics have non-trivial values) at two seeds.
STORE_SPEC = SweepSpec(
    name="analysis-unit",
    scenarios=("captive_fixed_80", "autonomous_full"),
    methods=("sqlb", "capacity"),
    seeds=(1, 2),
    scale="tiny",
)


@dataclasses.dataclass(frozen=True)
class WarmStore:
    root: object  # Path
    executor: ExperimentExecutor
    spec: SweepSpec

    @property
    def store(self) -> ResultStore:
        return self.executor.store


@pytest.fixture(scope="session")
def warm_store(tmp_path_factory) -> WarmStore:
    root = tmp_path_factory.mktemp("analysis") / "store"
    executor = ExperimentExecutor(workers=1, store=ResultStore(root))
    report = SweepRunner(executor).run_shard(STORE_SPEC)
    assert report.jobs == 8
    return WarmStore(root=root, executor=executor, spec=STORE_SPEC)
