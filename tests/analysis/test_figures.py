"""Tests for the figure catalog: payloads, determinism, rendering."""

from __future__ import annotations

import json

import pytest

from repro.analysis.figures import (
    FIGURE_CATALOG,
    available_figures,
    figure_payload,
    matplotlib_available,
    method_color,
    method_order,
    payload_bytes,
    render_catalog,
)
from repro.analysis.series import cells_from_store


def catalog_spec(name):
    return next(spec for spec in FIGURE_CATALOG if spec.name == name)


class TestMethodColors:
    def test_paper_methods_take_the_first_slots(self):
        ordered = method_order(["capacity", "mariposa", "sqlb"])
        assert ordered[0] == "sqlb"  # paper registry order, not alpha

    def test_color_follows_the_method_name_globally(self):
        """The same method is the same colour regardless of which
        subset of methods a figure or a store happens to show."""
        from repro.allocation.registry import available_methods

        colors = {m: method_color(m) for m in available_methods()}
        # Distinct slots for the paper's three methods.
        paper_colors = [colors["sqlb"], colors["capacity"], colors["mariposa"]]
        assert len(set(paper_colors)) == 3
        # Global: a second lookup — any context — returns the same hex.
        assert method_color("capacity") == colors["capacity"]
        # An unregistered method degrades to a stable fallback slot.
        assert method_color("hand-built") == method_color("hand-built")


class TestPayloads:
    def test_series_payload_shape(self, warm_store):
        cells, _ = cells_from_store(warm_store.root)
        payload = figure_payload(
            warm_store.store, catalog_spec("response_time"), cells
        )
        assert payload["kind"] == "series"
        assert set(payload["scenarios"]) == set(
            warm_store.spec.scenarios
        )
        body = payload["scenarios"]["captive_fixed_80"]
        assert body["method_order"] == ["sqlb", "capacity"]
        for method in body["method_order"]:
            band = body["methods"][method]
            assert (
                len(band["mean"])
                == len(band["p50"])
                == len(band["p90"])
                == len(band["ci_halfwidth"])
                == len(body["times"])
            )
            assert band["seeds"] == list(warm_store.spec.seeds)
        assert payload["missing"] == []

    def test_payload_is_strict_json_with_null_for_nan(self, warm_store):
        cells, _ = cells_from_store(warm_store.root)
        for spec in FIGURE_CATALOG:
            payload = figure_payload(warm_store.store, spec, cells)
            text = payload_bytes(payload)  # allow_nan=False inside
            assert json.loads(text.decode()) == payload

    def test_departures_payload_reports_fractions(self, warm_store):
        cells, _ = cells_from_store(warm_store.root)
        payload = figure_payload(
            warm_store.store, catalog_spec("departures"), cells
        )
        body = payload["scenarios"]["autonomous_full"]
        for method in body["method_order"]:
            for kind in ("provider", "consumer"):
                entry = body["methods"][method][kind]
                assert 0.0 <= entry["mean"] <= 1.0
                assert set(entry["per_seed"]) == {
                    str(s) for s in warm_store.spec.seeds
                }

    def test_delta_payload_uses_first_method_as_baseline(
        self, warm_store
    ):
        cells, _ = cells_from_store(warm_store.root)
        payload = figure_payload(
            warm_store.store,
            catalog_spec("response_time_delta"),
            cells,
        )
        for scenario, body in payload["scenarios"].items():
            assert body["baseline"] == "sqlb"
            assert "sqlb" not in body["methods"]
            for entry in body["methods"].values():
                assert entry["delta"] == pytest.approx(
                    entry["mean"] - entry["baseline_mean"]
                )


class TestRenderCatalog:
    def test_json_exports_are_byte_identical_across_runs(
        self, warm_store, tmp_path
    ):
        first = render_catalog(
            warm_store.root, tmp_path / "a", formats=("json",)
        )
        second = render_catalog(
            warm_store.root, tmp_path / "b", formats=("json",)
        )
        assert [p.name for p in first.written] == [
            p.name for p in second.written
        ]
        assert len(first.written) == len(FIGURE_CATALOG)
        for left, right in zip(first.written, second.written):
            assert left.read_bytes() == right.read_bytes(), left.name

    def test_only_filter_and_unknown_figures(self, warm_store, tmp_path):
        report = render_catalog(
            warm_store.root,
            tmp_path / "one",
            formats=("json",),
            only=("response_time",),
        )
        assert [p.name for p in report.written] == ["response_time.json"]
        with pytest.raises(ValueError, match="unknown figures"):
            render_catalog(
                warm_store.root,
                tmp_path / "bad",
                only=("figure_9z",),
            )

    def test_unknown_format_is_refused(self, warm_store, tmp_path):
        with pytest.raises(ValueError, match="unknown figure formats"):
            render_catalog(
                warm_store.root, tmp_path / "f", formats=("pdf",)
            )

    def test_image_formats_degrade_without_matplotlib(
        self, warm_store, tmp_path
    ):
        report = render_catalog(
            warm_store.root, tmp_path / "imgs", formats=("json", "svg")
        )
        json_files = [
            p for p in report.written if p.suffix == ".json"
        ]
        assert len(json_files) == len(FIGURE_CATALOG)
        if matplotlib_available():
            svg_files = [
                p for p in report.written if p.suffix == ".svg"
            ]
            assert len(svg_files) == len(FIGURE_CATALOG)
            assert not report.skipped
        else:
            assert any("matplotlib" in note for note in report.skipped)
            assert all(p.suffix == ".json" for p in report.written)

    @pytest.mark.skipif(
        not matplotlib_available(), reason="matplotlib not installed"
    )
    def test_svg_rendering_is_deterministic(self, warm_store, tmp_path):
        first = render_catalog(
            warm_store.root,
            tmp_path / "svg-a",
            formats=("svg",),
            only=("response_time",),
        )
        second = render_catalog(
            warm_store.root,
            tmp_path / "svg-b",
            formats=("svg",),
            only=("response_time",),
        )
        assert (
            first.written[0].read_bytes()
            == second.written[0].read_bytes()
        )

    def test_catalog_names_are_unique(self):
        assert len(set(available_figures())) == len(FIGURE_CATALOG)
