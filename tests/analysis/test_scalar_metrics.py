"""Tests for the scalar-metric registry."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import (
    SCALAR_METRICS,
    available_metrics,
    get_metric,
)
from repro.experiments.harness import run_repeated
from repro.simulation.config import DepartureRules, tiny_config


@pytest.fixture(scope="module")
def autonomous_result():
    config = tiny_config().with_departures(DepartureRules.autonomous(True))
    [result] = run_repeated(config, "sqlb", seeds=(3,))
    return result


class TestRegistry:
    def test_lookup_matches_catalog(self):
        for name in available_metrics():
            assert get_metric(name).name == name

    def test_unknown_metric_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("queries_per_fortnight")

    def test_registry_is_name_keyed(self):
        assert set(SCALAR_METRICS) == set(available_metrics())

    def test_directions_are_declared(self):
        assert not get_metric("response_time_post_warmup").higher_is_better
        assert get_metric("provider_satisfaction").higher_is_better


class TestExtraction:
    def test_response_time_matches_result_attribute(
        self, autonomous_result
    ):
        metric = get_metric("response_time_post_warmup")
        assert metric.extract(autonomous_result) == (
            autonomous_result.response_time_post_warmup
        )

    def test_departure_fractions_match_result_methods(
        self, autonomous_result
    ):
        assert get_metric("provider_departure_fraction").extract(
            autonomous_result
        ) == autonomous_result.provider_departure_fraction()
        assert get_metric("consumer_departure_fraction").extract(
            autonomous_result
        ) == autonomous_result.consumer_departure_fraction()

    def test_combined_departure_fraction_counts_distinct_participants(
        self, autonomous_result
    ):
        value = get_metric("departure_fraction").extract(autonomous_result)
        departed = {
            (d.kind, d.index) for d in autonomous_result.departures
        }
        initial = (
            autonomous_result.initial_providers
            + autonomous_result.initial_consumers
        )
        assert value == (len(departed) / initial if departed else 0.0)
        assert 0.0 <= value <= 1.0

    def test_satisfaction_metrics_read_the_final_sample(
        self, autonomous_result
    ):
        assert get_metric("provider_satisfaction").extract(
            autonomous_result
        ) == float(
            autonomous_result.series(
                "provider_intention_satisfaction_mean"
            )[-1]
        )


class TestWorsening:
    def test_lower_is_better_worsens_upward(self):
        metric = get_metric("response_time_post_warmup")
        assert metric.worsening(10.0, 13.0) == pytest.approx(3.0)
        assert metric.worsening(10.0, 8.0) == pytest.approx(-2.0)

    def test_higher_is_better_worsens_downward(self):
        metric = get_metric("provider_satisfaction")
        assert metric.worsening(0.8, 0.6) == pytest.approx(0.2)
        assert metric.worsening(0.6, 0.8) == pytest.approx(-0.2)

    def test_nan_propagates(self):
        metric = get_metric("response_time_post_warmup")
        assert math.isnan(metric.worsening(float("nan"), 1.0))
        assert math.isnan(metric.worsening(1.0, float("nan")))
