"""Tests for series extraction and across-seed aggregation.

The load-bearing properties: (1) per-seed extraction through the
manifest contract returns *bit-for-bit* the arrays the harness
produced — the analysis layer adds no numerics of its own on the read
path; (2) the per-sample band aggregation agrees exactly with the
scalar reference implementations (``average_series``, ``ci_halfwidth``)
applied sample by sample, on random NaN-riddled inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.series import (
    CellRuns,
    aggregate_band,
    band_payload,
    cell_band,
    cell_scalars,
    cells_from_store,
    extract_cell_series,
)
from repro.analysis.metrics import get_metric
from repro.experiments.harness import average_series, run_repeated
from repro.sweeps.aggregate import ci_halfwidth
from repro.sweeps.runner import load_manifests, write_manifest

N_TRIALS = 200


class TestCellDiscovery:
    def test_cells_match_the_sweep_grid(self, warm_store):
        cells, stale = cells_from_store(warm_store.root)
        assert stale == 0
        spec = warm_store.spec
        assert {(c.scenario, c.method) for c in cells} == {
            (scenario, method)
            for scenario in spec.scenarios
            for method in spec.methods
        }
        for cell in cells:
            assert cell.seeds == spec.seeds
            assert cell.config == spec.configs()[cell.scenario]

    def test_conflicting_scenario_configs_are_refused(
        self, warm_store, tmp_path
    ):
        import shutil

        root = tmp_path / "ambiguous"
        shutil.copytree(warm_store.root, root)
        # A second sweep declaring the same scenario at another scale.
        conflicting = warm_store.spec.__class__(
            name="other-scale",
            scenarios=("captive_fixed_80",),
            methods=("sqlb",),
            seeds=(1,),
            scale="scaled",
        )
        write_manifest(
            root,
            conflicting,
            "deadbeef",
            {"shard_index": 0, "shard_count": 1},
            "shard0000of0001",
            [
                {
                    "scenario": "captive_fixed_80",
                    "method": "sqlb",
                    "seed": 1,
                    "key": "0" * 64,
                    "state": "simulated",
                }
            ],
        )
        with pytest.raises(ValueError, match="ambiguous"):
            cells_from_store(root)

    def test_mixed_replay_and_live_cells_are_refused(
        self, warm_store, tmp_path
    ):
        """One cell declared by both a live sweep and a trace replay is
        ambiguous: the store keys resolve under different workloads."""
        import shutil

        root = tmp_path / "mixed"
        shutil.copytree(warm_store.root, root)
        spec = warm_store.spec
        write_manifest(
            root,
            spec,
            "deadbeef",
            {
                "trace": "some/trace.json",
                "trace_workload": {
                    "kind": "trace",
                    "fraction": 0.8,
                    "trace_path": "some/trace.json",
                    "trace_digest": "f" * 64,
                    "trace_base_kind": "fixed",
                },
            },
            "trace-replay.ffffffffffff",
            [
                {
                    "scenario": spec.scenarios[0],
                    "method": spec.methods[0],
                    "seed": spec.seeds[0],
                    "key": "0" * 64,
                    "state": "simulated",
                }
            ],
        )
        with pytest.raises(ValueError, match="trace-replay"):
            cells_from_store(root)

    def test_stale_manifests_are_skipped_not_reported_missing(
        self, warm_store, tmp_path
    ):
        import json
        import shutil

        root = tmp_path / "stale"
        shutil.copytree(warm_store.root, root)
        manifest_paths = sorted((root / "manifests").glob("*.json"))
        payload = json.loads(manifest_paths[0].read_text())
        payload["engine_version"] = "0-ancient"
        manifest_paths[0].write_text(json.dumps(payload))
        cells, stale = cells_from_store(root)
        assert stale == 1
        assert cells == []  # the only manifest was stale


class TestExtraction:
    def test_extraction_is_bit_for_bit(self, warm_store):
        """Store-read series must equal the harness's arrays exactly."""
        spec = warm_store.spec
        cells, _ = cells_from_store(warm_store.root)
        for cell in cells:
            reference = run_repeated(
                cell.config,
                cell.method,
                spec.seeds,
                executor=warm_store.executor,
            )
            for name in (
                "response_time_mean",
                "provider_intention_satisfaction_mean",
                "utilization_mean",
            ):
                times, per_seed, missing = extract_cell_series(
                    warm_store.store, cell, name
                )
                assert missing == ()
                assert np.array_equal(times, reference[0].times())
                for seed, result in zip(spec.seeds, reference):
                    assert np.array_equal(
                        per_seed[seed],
                        result.series(name),
                        equal_nan=True,
                    ), (cell.scenario, cell.method, name, seed)

    def test_band_mean_matches_average_series(self, warm_store):
        """The band's mean is exactly the harness's NaN-aware average."""
        cells, _ = cells_from_store(warm_store.root)
        cell = cells[0]
        results = run_repeated(
            cell.config,
            cell.method,
            cell.seeds,
            executor=warm_store.executor,
        )
        band = cell_band(warm_store.store, cell, "response_time_mean")
        assert np.array_equal(
            band.mean,
            average_series(results, "response_time_mean"),
            equal_nan=True,
        )

    def test_missing_seeds_are_reported_not_invented(self, warm_store):
        cells, _ = cells_from_store(warm_store.root)
        cell = cells[0]
        widened = CellRuns(
            scenario=cell.scenario,
            method=cell.method,
            config=cell.config,
            seeds=cell.seeds + (777,),  # never simulated
        )
        band = cell_band(
            warm_store.store, widened, "response_time_mean"
        )
        assert band.missing_seeds == (777,)
        assert band.seeds == cell.seeds

    def test_scalars_match_metric_on_full_results(self, warm_store):
        cells, _ = cells_from_store(warm_store.root)
        cell = next(
            c for c in cells if c.scenario == "autonomous_full"
        )
        metric = get_metric("provider_departure_fraction")
        values, missing = cell_scalars(
            warm_store.store, cell, metric.extract
        )
        assert missing == ()
        reference = run_repeated(
            cell.config,
            cell.method,
            cell.seeds,
            executor=warm_store.executor,
        )
        for seed, result in zip(cell.seeds, reference):
            assert values[seed] == metric.extract(result)


class TestAggregateBand:
    """Random-input sweeps against the scalar reference implementations."""

    @pytest.fixture(scope="class")
    def matrices(self):
        rng = np.random.default_rng(4242)
        cases = []
        for _ in range(N_TRIALS):
            seeds = rng.integers(1, 6)
            samples = rng.integers(1, 20)
            matrix = rng.normal(10.0, 5.0, size=(seeds, samples))
            # Riddle with NaN (including whole-column NaN) the way
            # response-time series are.
            mask = rng.random(matrix.shape) < 0.35
            matrix[mask] = np.nan
            cases.append(matrix)
        return cases

    def test_matches_scalar_references_per_sample(self, matrices):
        for matrix in matrices:
            per_seed = {
                seed: matrix[index]
                for index, seed in enumerate(
                    range(100, 100 + matrix.shape[0])
                )
            }
            mean, quantiles, halfwidth = aggregate_band(per_seed)
            for column in range(matrix.shape[1]):
                values = matrix[:, column]
                finite = values[~np.isnan(values)]
                if finite.size:
                    assert mean[column] == pytest.approx(
                        finite.mean(), nan_ok=False
                    )
                    assert quantiles[0.5][column] == pytest.approx(
                        float(np.quantile(finite, 0.5))
                    )
                    assert quantiles[0.9][column] == pytest.approx(
                        float(np.quantile(finite, 0.9))
                    )
                else:
                    assert np.isnan(mean[column])
                # The per-sample CI must equal the scalar definition.
                reference = ci_halfwidth(values.tolist())
                if np.isnan(reference):
                    assert np.isnan(halfwidth[column])
                else:
                    assert halfwidth[column] == pytest.approx(reference)

    def test_seed_insertion_order_does_not_matter(self, matrices):
        matrix = matrices[0]
        seeds = list(range(100, 100 + matrix.shape[0]))
        forward = {s: matrix[i] for i, s in enumerate(seeds)}
        backward = {
            s: matrix[i] for i, s in reversed(list(enumerate(seeds)))
        }
        for left, right in zip(
            aggregate_band(forward), aggregate_band(backward)
        ):
            if isinstance(left, dict):
                for q in left:
                    assert np.array_equal(
                        left[q], right[q], equal_nan=True
                    )
            else:
                assert np.array_equal(left, right, equal_nan=True)

    def test_empty_cell_degenerates_cleanly(self):
        mean, quantiles, halfwidth = aggregate_band({})
        assert mean.size == 0
        assert halfwidth.size == 0
        assert all(values.size == 0 for values in quantiles.values())


class TestAlignment:
    def test_mixed_grids_raise(self, warm_store, tmp_path):
        from repro.experiments.store import ResultStore

        cells, _ = cells_from_store(warm_store.root)
        cell = cells[0]
        # Forge a store where one seed's npz carries a longer grid.
        forged = ResultStore(tmp_path / "forged")
        for seed in cell.seeds:
            result = warm_store.store.get(cell.config, cell.method, seed)
            forged.put(result, method=cell.method)
        key = forged.key(cell.config, cell.method, cell.seeds[-1])
        import numpy as np_

        with np_.load(forged._npz_path(key)) as archive:
            arrays = {name: archive[name] for name in archive.files}
            arrays = {k: v.copy() for k, v in arrays.items()}
        arrays["times"] = np_.concatenate([arrays["times"], [999.0]])
        arrays["series__response_time_mean"] = np_.concatenate(
            [arrays["series__response_time_mean"], [1.0]]
        )
        np_.savez_compressed(forged._npz_path(key), **arrays)
        with pytest.raises(ValueError, match="different grid"):
            extract_cell_series(forged, cell, "response_time_mean")


class TestBandPayload:
    def test_payload_is_strict_json(self, warm_store):
        import json

        cells, _ = cells_from_store(warm_store.root)
        band = cell_band(
            warm_store.store, cells[0], "response_time_mean"
        )
        payload = band_payload(band)
        text = json.dumps(payload, allow_nan=False)  # must not raise
        assert json.loads(text) == payload
        assert payload["seeds"] == list(band.seeds)
        assert len(payload["mean"]) == band.times.size


class TestUnknownSeriesName:
    def test_load_series_raises_on_a_typo(self, warm_store):
        cells, _ = cells_from_store(warm_store.root)
        cell = cells[0]
        with pytest.raises(KeyError, match="unknown series"):
            warm_store.store.load_series(
                cell.config, cell.method, cell.seeds[0],
                names=("response_time_men",),
            )

    def test_a_genuinely_absent_run_is_still_a_miss(self, warm_store):
        cells, _ = cells_from_store(warm_store.root)
        cell = cells[0]
        assert (
            warm_store.store.load_series(
                cell.config, cell.method, 999_999,
                names=("response_time_mean",),
            )
            is None
        )

    def test_cli_rejects_a_typoed_series(self, warm_store):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown series"):
            main(
                [
                    "analyze", "series",
                    "--store", str(warm_store.root),
                    "--series", "response_time_men",
                ]
            )


class TestCellScalarMap:
    def test_matches_single_metric_extraction(self, warm_store):
        from repro.analysis.series import cell_scalar_map

        cells, _ = cells_from_store(warm_store.root)
        cell = cells[0]
        metrics = {
            name: get_metric(name).extract
            for name in (
                "response_time_post_warmup",
                "provider_departure_fraction",
            )
        }
        combined, missing = cell_scalar_map(
            warm_store.store, cell, metrics
        )
        assert missing == ()
        for name, extract in metrics.items():
            single, _ = cell_scalars(warm_store.store, cell, extract)
            assert combined[name] == single
