"""Tests for cross-store comparison and regression verdicts."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis.compare import (
    compare_stores,
    format_compare_table,
)
from repro.analysis.series import cells_from_store
from repro.experiments.store import ResultStore
from repro.sweeps.aggregate import merge_stores


@pytest.fixture()
def regressed_store(warm_store, tmp_path):
    """A copy of the warm store with sqlb/captive response times +50 %.

    The perturbed results are written through the normal store ``put``
    under identical keys, so the copy is indistinguishable from a store
    produced by a genuinely slower engine build.
    """
    root = tmp_path / "regressed"
    merge_stores([warm_store.root], root)
    store = ResultStore(root)
    cells, _ = cells_from_store(root)
    cell = next(
        c
        for c in cells
        if c.scenario == "captive_fixed_80" and c.method == "sqlb"
    )
    for seed in cell.seeds:
        result = store.get(cell.config, cell.method, seed)
        worse = dataclasses.replace(
            result,
            response_time_post_warmup=(
                result.response_time_post_warmup * 1.5
            ),
        )
        store.put(worse, method=cell.method)
    return root


class TestCompareStores:
    def test_store_vs_itself_is_clean(self, warm_store):
        report = compare_stores(warm_store.root, warm_store.root)
        assert report.ok
        assert report.regressions == ()
        assert report.only_in_a == report.only_in_b == ()
        # Every shared cell × metric got a verdict.
        cells, _ = cells_from_store(warm_store.root)
        assert len(report.verdicts) == len(cells) * 4

    def test_injected_regression_is_flagged(
        self, warm_store, regressed_store
    ):
        report = compare_stores(warm_store.root, regressed_store)
        assert not report.ok
        flagged = {
            (v.scenario, v.method, v.metric)
            for v in report.regressions
        }
        assert (
            "captive_fixed_80",
            "sqlb",
            "response_time_post_warmup",
        ) in flagged
        [verdict] = [
            v
            for v in report.regressions
            if v.metric == "response_time_post_warmup"
        ]
        assert verdict.relative_worsening == pytest.approx(0.5)
        assert verdict.threshold == pytest.approx(0.30)

    def test_direction_matters_an_improvement_is_ok(
        self, warm_store, regressed_store
    ):
        # Swapped operands: B is *faster* than A, which is never a
        # regression no matter how large the delta.
        report = compare_stores(regressed_store, warm_store.root)
        assert report.ok

    def test_per_metric_threshold_override(
        self, warm_store, regressed_store
    ):
        report = compare_stores(
            warm_store.root,
            regressed_store,
            thresholds={"response_time_post_warmup": 0.60},
        )
        assert report.ok  # +50 % sits under the raised gate
        report = compare_stores(
            warm_store.root,
            regressed_store,
            thresholds={"response_time_post_warmup": 0.10},
        )
        assert not report.ok

    def test_threshold_for_uncompared_metric_is_refused(
        self, warm_store
    ):
        with pytest.raises(ValueError, match="not being compared"):
            compare_stores(
                warm_store.root,
                warm_store.root,
                metrics=("response_time_post_warmup",),
                thresholds={"provider_satisfaction": 0.1},
            )

    def test_disjoint_cells_are_reported_not_failed(
        self, warm_store, tmp_path
    ):
        import shutil

        partial = tmp_path / "partial"
        shutil.copytree(warm_store.root, partial)
        # Drop one cell from B's manifests by rewriting them.
        manifest_dir = partial / "manifests"
        for path in manifest_dir.glob("*.json"):
            payload = json.loads(path.read_text())
            payload["jobs"] = [
                job
                for job in payload["jobs"]
                if job["method"] != "capacity"
            ]
            path.write_text(json.dumps(payload))
        report = compare_stores(warm_store.root, partial)
        assert report.ok
        assert all(cell[1] == "capacity" for cell in report.only_in_a)
        assert report.only_in_b == ()

    def test_payload_is_strict_json(
        self, warm_store, regressed_store
    ):
        report = compare_stores(warm_store.root, regressed_store)
        text = json.dumps(report.payload(), allow_nan=False)
        parsed = json.loads(text)
        assert parsed["ok"] is False
        assert parsed["regressions"]

    def test_table_names_the_verdict(
        self, warm_store, regressed_store
    ):
        table = format_compare_table(
            compare_stores(warm_store.root, regressed_store)
        )
        assert "REGRESSION" in table
        assert table.splitlines()[-1].startswith("verdict: 1 regression")


class TestCompareCli:
    def test_exit_nonzero_on_regression(
        self, warm_store, regressed_store, capsys
    ):
        from repro.cli import main

        assert (
            main(
                [
                    "analyze",
                    "compare",
                    str(warm_store.root),
                    str(warm_store.root),
                ]
            )
            == 0
        )
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "analyze",
                    "compare",
                    str(warm_store.root),
                    str(regressed_store),
                ]
            )
        assert excinfo.value.code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_json_flag_emits_payload(self, warm_store, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "analyze",
                    "compare",
                    str(warm_store.root),
                    str(warm_store.root),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True


class TestPairingAndEmptyGates:
    def test_nan_on_one_side_drops_the_seed_from_both_means(
        self, warm_store, tmp_path
    ):
        """A seed whose metric is NaN on one side must not skew the
        other side's mean (the paired-seed contract)."""
        root = tmp_path / "nan-side"
        merge_stores([warm_store.root], root)
        store = ResultStore(root)
        cells, _ = cells_from_store(root)
        cell = next(
            c
            for c in cells
            if c.scenario == "captive_fixed_80" and c.method == "sqlb"
        )
        poisoned_seed = cell.seeds[0]
        result = store.get(cell.config, cell.method, poisoned_seed)
        store.put(
            dataclasses.replace(
                result, response_time_post_warmup=float("nan")
            ),
            method=cell.method,
        )
        report = compare_stores(
            warm_store.root,
            root,
            metrics=("response_time_post_warmup",),
        )
        verdict = next(
            v
            for v in report.verdicts
            if (v.scenario, v.method) == (cell.scenario, cell.method)
        )
        assert poisoned_seed not in verdict.seeds
        assert set(verdict.seeds) == set(cell.seeds) - {poisoned_seed}
        # Identical on the remaining paired seeds: clean verdict.
        assert verdict.status == "ok"
        assert verdict.mean_a == pytest.approx(verdict.mean_b)

    def test_cli_refuses_stores_with_no_comparable_cells(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        empty_a = tmp_path / "empty-a"
        empty_b = tmp_path / "empty-b"
        empty_a.mkdir()
        empty_b.mkdir()
        with pytest.raises(SystemExit, match="no comparable cells"):
            main(["analyze", "compare", str(empty_a), str(empty_b)])

    def test_cli_refuses_an_all_incomparable_comparison(
        self, warm_store, tmp_path
    ):
        """Two stores swept with disjoint seed sets share cells but
        zero paired seeds — the gate must refuse, not pass."""
        import shutil

        from repro.cli import main

        disjoint = tmp_path / "disjoint-seeds"
        shutil.copytree(warm_store.root, disjoint)
        for path in (disjoint / "manifests").glob("*.json"):
            payload = json.loads(path.read_text())
            for job in payload["jobs"]:
                job["seed"] = int(job["seed"]) + 1000
            path.write_text(json.dumps(payload))
        with pytest.raises(SystemExit, match="incomparable"):
            main(
                [
                    "analyze",
                    "compare",
                    str(warm_store.root),
                    str(disjoint),
                ]
            )
