"""Tests for the time-series collector."""

from __future__ import annotations

import pytest

from repro.simulation.stats import TimeSeriesCollector


class TestTimeSeriesCollector:
    def test_round_trip(self):
        collector = TimeSeriesCollector()
        collector.add_sample(1.0, {"a": 0.5, "b": 2.0})
        collector.add_sample(2.0, {"a": 0.6, "b": 1.0})
        assert collector.times().tolist() == [1.0, 2.0]
        assert collector.series("a").tolist() == [0.5, 0.6]
        assert collector.last("b") == 1.0
        assert len(collector) == 2
        assert set(collector.names) == {"a", "b"}

    def test_rejects_key_drift(self):
        collector = TimeSeriesCollector()
        collector.add_sample(1.0, {"a": 0.5})
        with pytest.raises(ValueError, match="sample keys changed"):
            collector.add_sample(2.0, {"a": 0.5, "b": 1.0})
        with pytest.raises(ValueError):
            collector.add_sample(3.0, {"b": 1.0})

    def test_rejects_time_travel(self):
        collector = TimeSeriesCollector()
        collector.add_sample(5.0, {"a": 1.0})
        with pytest.raises(ValueError, match="chronological"):
            collector.add_sample(4.0, {"a": 1.0})

    def test_unknown_series_raises_keyerror(self):
        collector = TimeSeriesCollector()
        collector.add_sample(1.0, {"a": 1.0})
        with pytest.raises(KeyError):
            collector.series("zzz")
        with pytest.raises(KeyError):
            collector.last("zzz")

    def test_as_dict_returns_copies(self):
        collector = TimeSeriesCollector()
        collector.add_sample(1.0, {"a": 1.0})
        exported = collector.as_dict()
        exported["a"][0] = 99.0
        assert collector.series("a")[0] == 1.0
