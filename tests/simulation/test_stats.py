"""Tests for the time-series collector."""

from __future__ import annotations

import pytest

from repro.simulation.stats import TimeSeriesCollector


class TestTimeSeriesCollector:
    def test_round_trip(self):
        collector = TimeSeriesCollector()
        collector.add_sample(1.0, {"a": 0.5, "b": 2.0})
        collector.add_sample(2.0, {"a": 0.6, "b": 1.0})
        assert collector.times().tolist() == [1.0, 2.0]
        assert collector.series("a").tolist() == [0.5, 0.6]
        assert collector.last("b") == 1.0
        assert len(collector) == 2
        assert set(collector.names) == {"a", "b"}

    def test_rejects_key_drift(self):
        collector = TimeSeriesCollector()
        collector.add_sample(1.0, {"a": 0.5})
        with pytest.raises(ValueError, match="sample keys changed"):
            collector.add_sample(2.0, {"a": 0.5, "b": 1.0})
        with pytest.raises(ValueError):
            collector.add_sample(3.0, {"b": 1.0})

    def test_rejects_time_travel(self):
        collector = TimeSeriesCollector()
        collector.add_sample(5.0, {"a": 1.0})
        with pytest.raises(ValueError, match="chronological"):
            collector.add_sample(4.0, {"a": 1.0})

    def test_unknown_series_raises_keyerror(self):
        collector = TimeSeriesCollector()
        collector.add_sample(1.0, {"a": 1.0})
        with pytest.raises(KeyError):
            collector.series("zzz")
        with pytest.raises(KeyError):
            collector.last("zzz")

    def test_as_dict_returns_copies(self):
        collector = TimeSeriesCollector()
        collector.add_sample(1.0, {"a": 1.0})
        exported = collector.as_dict()
        exported["a"][0] = 99.0
        assert collector.series("a")[0] == 1.0


class TestNumpyBackedStorage:
    """The numpy-buffer internals must be invisible to callers."""

    def test_growth_beyond_initial_capacity_round_trips(self):
        import numpy as np

        collector = TimeSeriesCollector()
        for index in range(1000):  # well past the initial buffer
            collector.add_sample(
                float(index), {"a": float(index), "b": float(-index)}
            )
        assert len(collector) == 1000
        assert np.array_equal(
            collector.times(), np.arange(1000, dtype=float)
        )
        assert np.array_equal(
            collector.series("b"), -np.arange(1000, dtype=float)
        )
        assert collector.last("a") == 999.0

    def test_from_arrays_adopts_without_per_element_conversion(self):
        import numpy as np

        times = np.array([1.0, 2.0, 3.0])
        series = {"a": np.array([0.5, 0.25, 0.125], dtype=np.float32)}
        collector = TimeSeriesCollector.from_arrays(times, series)
        assert collector.series("a").dtype == np.float64
        # The collector owns copies: mutating the sources changes nothing.
        times[0] = 99.0
        series["a"][0] = 99.0
        assert collector.times()[0] == 1.0
        assert collector.series("a")[0] == 0.5

    def test_from_arrays_then_append_continues_the_series(self):
        import numpy as np

        collector = TimeSeriesCollector.from_arrays(
            np.array([1.0, 2.0]), {"a": np.array([10.0, 20.0])}
        )
        collector.add_sample(3.0, {"a": 30.0})
        assert collector.times().tolist() == [1.0, 2.0, 3.0]
        assert collector.series("a").tolist() == [10.0, 20.0, 30.0]
