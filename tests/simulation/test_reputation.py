"""Tests for the reputation registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.reputation import ReputationRegistry


class TestReputationRegistry:
    def test_scalar_initialisation(self):
        registry = ReputationRegistry(3, initial=0.4)
        assert registry.values.tolist() == [0.4, 0.4, 0.4]

    def test_array_initialisation(self):
        registry = ReputationRegistry(2, initial=np.array([0.1, -0.5]))
        assert registry.of(np.array([1])).tolist() == [-0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            ReputationRegistry(0)
        with pytest.raises(ValueError):
            ReputationRegistry(2, initial=2.0)
        with pytest.raises(ValueError):
            ReputationRegistry(2, feedback_weight=1.5)

    def test_rating_moves_reputation_towards_feedback(self):
        registry = ReputationRegistry(1, initial=0.0, feedback_weight=0.5)
        registry.rate(0, 1.0)
        assert registry.values[0] == pytest.approx(0.5)
        registry.rate(0, 1.0)
        assert registry.values[0] == pytest.approx(0.75)

    def test_zero_weight_freezes_registry(self):
        registry = ReputationRegistry(1, initial=0.3, feedback_weight=0.0)
        registry.rate(0, -1.0)
        assert registry.values[0] == 0.3

    def test_rate_many(self):
        registry = ReputationRegistry(3, initial=0.0, feedback_weight=1.0)
        registry.rate_many(np.array([0, 2]), np.array([1.0, -1.0]))
        assert registry.values.tolist() == [1.0, 0.0, -1.0]

    def test_rejects_out_of_range_ratings(self):
        registry = ReputationRegistry(1, feedback_weight=0.5)
        with pytest.raises(ValueError):
            registry.rate(0, 1.5)
        with pytest.raises(ValueError):
            registry.rate_many(np.array([0]), np.array([-2.0]))
