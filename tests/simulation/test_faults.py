"""Tests for fault injection (outages, flapping) in the engine.

The load-bearing invariants:

* A config with ``faults=None`` draws nothing from any new RNG stream,
  so every pre-fault run stays bit-identical (the goldens enforce the
  same thing globally; here it is asserted against the fault path
  specifically).
* Every capacity change — down and up alike — goes through the pool's
  ``deactivate``/``reactivate`` and therefore bumps the epoch the
  candidate cache is keyed on.
* A provider that *departed* (autonomy) is never resurrected by a
  fault-recovery event; only providers the fault layer itself took
  down come back.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import get_metric
from repro.simulation.config import tiny_config
from repro.simulation.engine import MediatorSimulation, run_simulation
from repro.simulation.faults import (
    FaultEvent,
    FaultSpec,
    FlapSpec,
    OutageSpec,
    compile_fault_events,
)

from tests.experiments.test_golden import (
    SERIES_SHA256,
    _series_fingerprint,
    autonomous_config,
    captive_config,
)
from tests.simulation.test_candidate_cache import build_sim, make_query

OUTAGE = FaultSpec(
    outages=(OutageSpec(fraction=0.25, start=0.40, end=0.60),)
)


class TestSpecValidation:
    def test_outage_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            OutageSpec(fraction=0.0, start=0.1, end=0.2)
        with pytest.raises(ValueError, match="fraction"):
            OutageSpec(fraction=1.5, start=0.1, end=0.2)
        with pytest.raises(ValueError, match="window"):
            OutageSpec(fraction=0.5, start=0.6, end=0.6)
        with pytest.raises(ValueError, match="window"):
            OutageSpec(fraction=0.5, start=-0.1, end=0.5)

    def test_flap_bounds(self):
        with pytest.raises(ValueError, match="period"):
            FlapSpec(fraction=0.5, period=0.0)
        with pytest.raises(ValueError, match="duty"):
            FlapSpec(fraction=0.5, period=0.2, duty=1.0)

    def test_fault_spec_type_checks(self):
        with pytest.raises(TypeError):
            FaultSpec(outages=(FlapSpec(fraction=0.5, period=0.2),))
        with pytest.raises(TypeError):
            FaultSpec(flaps=(OutageSpec(fraction=0.5, start=0.1, end=0.2),))

    def test_canonicalizes_to_tuples(self):
        spec = FaultSpec(outages=[OutageSpec(0.5, 0.1, 0.2)])
        assert isinstance(spec.outages, tuple)


class TestCompile:
    def test_outage_compiles_to_down_up_pair(self):
        rng = np.random.default_rng(0)
        events = compile_fault_events(OUTAGE, 100.0, 16, rng)
        assert [e.action for e in events] == ["down", "up"]
        assert events[0].time == pytest.approx(40.0)
        assert events[1].time == pytest.approx(60.0)
        assert events[0].providers == events[1].providers
        assert len(events[0].providers) == 4  # 0.25 * 16

    def test_compile_is_deterministic_per_seed(self):
        first = compile_fault_events(
            OUTAGE, 100.0, 16, np.random.default_rng(7)
        )
        second = compile_fault_events(
            OUTAGE, 100.0, 16, np.random.default_rng(7)
        )
        assert first == second

    def test_flap_cycles_cover_window(self):
        spec = FaultSpec(
            flaps=(
                FlapSpec(fraction=0.25, period=0.2, duty=0.5,
                         start=0.0, end=1.0),
            )
        )
        events = compile_fault_events(
            spec, 100.0, 16, np.random.default_rng(0)
        )
        downs = [e for e in events if e.action == "down"]
        ups = [e for e in events if e.action == "up"]
        assert len(downs) == len(ups) == 5  # 5 cycles of 20 s
        assert [e.time for e in downs] == pytest.approx(
            [0.0, 20.0, 40.0, 60.0, 80.0]
        )
        assert [e.time for e in ups] == pytest.approx(
            [10.0, 30.0, 50.0, 70.0, 90.0]
        )

    def test_events_sorted_by_time(self):
        spec = FaultSpec(
            outages=(
                OutageSpec(fraction=0.2, start=0.5, end=0.9),
                OutageSpec(fraction=0.2, start=0.1, end=0.7),
            )
        )
        events = compile_fault_events(
            spec, 100.0, 16, np.random.default_rng(0)
        )
        assert [e.time for e in events] == sorted(e.time for e in events)


class TestEngineIntegration:
    def test_zero_faults_is_bit_identical_to_baseline(self):
        """faults=None must not consume RNG or perturb anything."""
        result = run_simulation(captive_config(), "sqlb", seed=5)
        assert (
            _series_fingerprint(result)
            == SERIES_SHA256[("captive", "sqlb")]
        )

    def test_outage_dips_and_recovers(self):
        config = captive_config().with_faults(OUTAGE)
        result = run_simulation(config, "sqlb", seed=5)
        active = result.series("active_providers")
        assert active.min() == 12  # 16 - 4 down
        assert active[0] == 16
        assert active[-1] == 16  # recovered by the horizon

    def test_outage_changes_numerics_but_not_grid(self):
        baseline = run_simulation(captive_config(), "sqlb", seed=5)
        faulted = run_simulation(
            captive_config().with_faults(OUTAGE), "sqlb", seed=5
        )
        np.testing.assert_array_equal(baseline.times(), faulted.times())
        assert _series_fingerprint(baseline) != _series_fingerprint(faulted)

    def test_departed_provider_is_never_resurrected(self):
        """A fault-up event only restores fault-downed providers."""
        config = tiny_config(duration=60.0).with_faults(OUTAGE)
        sim = MediatorSimulation(config, "sqlb", seed=5)
        # Simulate an autonomy departure of a provider the outage will
        # also take down: departures win permanently.
        downed = sim._fault_events[0].providers
        victim = downed[0]
        sim.providers.deactivate(victim)
        sim._apply_fault_event(sim._fault_events[0])
        sim._apply_fault_event(sim._fault_events[1])
        active = sim.providers.active
        assert not active[victim]  # departed, not resurrected
        for provider in downed[1:]:
            assert active[provider]  # fault-downed ones came back

    def test_fault_events_bump_pool_epoch(self):
        config = tiny_config(duration=60.0).with_faults(OUTAGE)
        sim = MediatorSimulation(config, "sqlb", seed=5)
        epoch = sim.providers.epoch
        sim._apply_fault_event(sim._fault_events[0])
        assert sim.providers.epoch == epoch + len(
            sim._fault_events[0].providers
        )


class TestCandidateCacheUnderFaults:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 15), st.booleans()),
            max_size=30,
        )
    )
    def test_cache_tracks_deactivate_and_reactivate(self, ops):
        """Property: with up *and* down transitions interleaved, the
        cached candidate set always equals a fresh recomputation."""
        sim = build_sim()
        for provider, down in ops:
            if down:
                sim.providers.deactivate(provider)
            else:
                sim.providers.reactivate(provider)
            np.testing.assert_array_equal(
                sim._candidates(make_query(0)),
                np.flatnonzero(sim.providers.active),
            )


class TestFaultMetrics:
    def test_availability_and_recovery_without_faults(self):
        result = run_simulation(captive_config(), "sqlb", seed=5)
        availability = get_metric("provider_availability").extract(result)
        recovery = get_metric("capacity_recovery_time").extract(result)
        assert availability == pytest.approx(1.0)
        assert recovery == 0.0

    def test_availability_and_recovery_with_outage(self):
        config = captive_config().with_faults(OUTAGE)
        result = run_simulation(config, "sqlb", seed=5)
        availability = get_metric("provider_availability").extract(result)
        recovery = get_metric("capacity_recovery_time").extract(result)
        assert 0.9 < availability < 1.0
        # The outage window (24 s – 36 s) covers exactly one sample of
        # the 10 s grid (t=30); capacity is back at the next sample, so
        # the observed recovery time is one grid step.
        assert recovery == pytest.approx(10.0)

    def test_recovery_nan_when_capacity_never_returns(self):
        # Permanent churn: an autonomous departure removes capacity
        # forever, so the recovery metric must report NaN, not a huge
        # number.  (An OutageSpec cannot produce this — its recovery
        # event lands at or before the horizon by construction.)
        result = run_simulation(autonomous_config(), "sqlb", seed=5)
        active = result.series("active_providers")
        assert active.min() < active[0]  # capacity was lost...
        assert active[-1] < active[0]  # ...and never came back
        recovery = get_metric("capacity_recovery_time").extract(result)
        assert np.isnan(recovery)


def test_fault_event_is_frozen():
    event = FaultEvent(time=1.0, action="down", providers=(0,))
    with pytest.raises(AttributeError):
        event.time = 2.0
