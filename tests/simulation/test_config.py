"""Tests for the simulation configuration (Table 2 fidelity)."""

from __future__ import annotations

import pytest

from repro.simulation.config import (
    CapacityClassMix,
    ClassBand,
    DepartureRules,
    PreferenceClassMix,
    QueryClassSpec,
    SimulationConfig,
    WorkloadSpec,
    paper_config,
    scaled_config,
    tiny_config,
)


class TestTable2Fidelity:
    def test_paper_populations(self):
        config = paper_config()
        assert config.n_consumers == 200
        assert config.n_providers == 400
        assert config.consumer_memory == 200
        assert config.provider_memory == 500
        assert config.initial_satisfaction == 0.5

    def test_paper_workload_is_poisson_ramp(self):
        config = paper_config()
        assert config.workload.kind == "ramp"
        assert config.workload.start_fraction == pytest.approx(0.30)
        assert config.workload.end_fraction == pytest.approx(1.00)

    def test_section_6_1_consumer_interest_mix(self):
        mix = paper_config().consumer_interest
        assert mix.fractions == (0.10, 0.30, 0.60)
        assert (mix.high.low, mix.high.high) == (0.34, 1.0)
        assert (mix.medium.low, mix.medium.high) == (-0.54, 0.34)
        assert (mix.low.low, mix.low.high) == (-1.0, -0.54)

    def test_section_6_1_provider_adaptation_mix(self):
        mix = paper_config().provider_adaptation
        assert mix.fractions == (0.05, 0.60, 0.35)
        assert (mix.high.low, mix.high.high) == (-0.2, 1.0)

    def test_section_6_1_capacity_ratios(self):
        capacity = paper_config().capacity
        low, medium, high = capacity.rates
        assert high == pytest.approx(3 * medium)
        assert high == pytest.approx(7 * low)
        assert capacity.fractions == (0.10, 0.60, 0.30)

    def test_query_classes_cost_130_and_150(self):
        spec = paper_config().query_classes
        assert spec.costs == (130.0, 150.0)
        # A high-capacity provider (100 units/s) performs them in
        # 1.3 s and 1.5 s — the paper's anchor.
        assert 130.0 / 100.0 == pytest.approx(1.3)
        assert spec.mean_cost == pytest.approx(140.0)


class TestDerivedQuantities:
    def test_total_capacity_formula(self):
        config = paper_config()
        rates = config.capacity.rates
        expected = 400 * (0.1 * rates[0] + 0.6 * rates[1] + 0.3 * rates[2])
        assert config.total_capacity() == pytest.approx(expected)

    def test_arrival_rate_matches_workload_fraction(self):
        config = tiny_config(workload=WorkloadSpec.fixed(0.8))
        expected = 0.8 * config.total_capacity() / 140.0
        assert config.arrival_rate_at(0.0) == pytest.approx(expected)
        assert config.arrival_rate_at(50.0) == pytest.approx(expected)

    def test_ramp_rate_interpolates_linearly(self):
        config = tiny_config(
            workload=WorkloadSpec(kind="ramp", start_fraction=0.3,
                                  end_fraction=1.0),
            duration=100.0,
        )
        halfway = config.workload.fraction_at(50.0, 100.0)
        assert halfway == pytest.approx(0.65)
        assert config.optimal_utilization_at(100.0) == pytest.approx(1.0)

    def test_peak_rate_is_ramp_end(self):
        config = tiny_config(duration=100.0)
        assert config.peak_arrival_rate() == pytest.approx(
            config.arrival_rate_at(100.0)
        )


class TestBurstWorkload:
    def test_fraction_at_inside_and_outside_the_window(self):
        spec = WorkloadSpec.burst(base=0.4, peak=1.0, start=0.4, end=0.6)
        assert spec.fraction_at(0.0, 100.0) == pytest.approx(0.4)
        assert spec.fraction_at(39.9, 100.0) == pytest.approx(0.4)
        assert spec.fraction_at(40.0, 100.0) == pytest.approx(1.0)
        assert spec.fraction_at(50.0, 100.0) == pytest.approx(1.0)
        # The window is half-open: [start, end).
        assert spec.fraction_at(60.0, 100.0) == pytest.approx(0.4)
        assert spec.fraction_at(100.0, 100.0) == pytest.approx(0.4)

    def test_window_is_relative_to_the_horizon(self):
        spec = WorkloadSpec.burst(base=0.5, peak=1.2, start=0.25, end=0.75)
        for duration in (40.0, 400.0, 4000.0):
            assert spec.fraction_at(0.5 * duration, duration) == pytest.approx(
                1.2
            )
            assert spec.fraction_at(0.1 * duration, duration) == pytest.approx(
                0.5
            )

    def test_peak_fraction_covers_both_levels(self):
        surge = WorkloadSpec.burst(base=0.4, peak=1.0, start=0.4, end=0.6)
        assert surge.peak_fraction(100.0) == pytest.approx(1.0)
        dip = WorkloadSpec.burst(base=0.9, peak=0.2, start=0.4, end=0.6)
        assert dip.peak_fraction(100.0) == pytest.approx(0.9)

    def test_overload_burst_drives_the_arrival_rate(self):
        config = tiny_config(
            workload=WorkloadSpec.burst(base=0.5, peak=1.2, start=0.3, end=0.7),
            duration=100.0,
        )
        mid = config.arrival_rate_at(50.0)
        edge = config.arrival_rate_at(10.0)
        assert mid == pytest.approx(1.2 / 0.5 * edge)
        assert config.peak_arrival_rate() == pytest.approx(mid)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="burst_fraction"):
            WorkloadSpec(kind="burst", burst_start=0.2, burst_end=0.5)
        with pytest.raises(ValueError, match="burst_start"):
            WorkloadSpec(kind="burst", burst_fraction=1.0)
        with pytest.raises(ValueError, match="burst window"):
            WorkloadSpec.burst(base=0.5, peak=1.0, start=0.6, end=0.4)
        with pytest.raises(ValueError, match="burst window"):
            WorkloadSpec.burst(base=0.5, peak=1.0, start=-0.1, end=0.5)
        with pytest.raises(ValueError, match="burst window"):
            WorkloadSpec.burst(base=0.5, peak=1.0, start=0.5, end=1.1)
        with pytest.raises(ValueError, match="start_fraction"):
            WorkloadSpec.burst(base=0.0, peak=1.0, start=0.2, end=0.5)
        with pytest.raises(ValueError, match="points are only valid"):
            WorkloadSpec(
                kind="burst",
                burst_fraction=1.0,
                burst_start=0.2,
                burst_end=0.5,
                points=((0.0, 0.5), (1.0, 0.5)),
            )

    def test_burst_fields_rejected_on_fixed_and_ramp(self):
        with pytest.raises(ValueError, match="only valid for kind='burst'"):
            WorkloadSpec(kind="ramp", burst_fraction=1.0)
        with pytest.raises(ValueError, match="only valid for kind='piecewise'"):
            WorkloadSpec(kind="fixed", start_fraction=0.5,
                         points=((0.0, 0.5), (1.0, 0.5)))


class TestPiecewiseWorkload:
    def test_linear_interpolation_between_breakpoints(self):
        spec = WorkloadSpec.piecewise(((0.0, 0.3), (0.5, 1.0), (1.0, 0.3)))
        assert spec.fraction_at(0.0, 100.0) == pytest.approx(0.3)
        assert spec.fraction_at(25.0, 100.0) == pytest.approx(0.65)
        assert spec.fraction_at(50.0, 100.0) == pytest.approx(1.0)
        assert spec.fraction_at(75.0, 100.0) == pytest.approx(0.65)
        assert spec.fraction_at(100.0, 100.0) == pytest.approx(0.3)
        # Out-of-range times clamp to the endpoints.
        assert spec.fraction_at(-5.0, 100.0) == pytest.approx(0.3)
        assert spec.fraction_at(500.0, 100.0) == pytest.approx(0.3)

    def test_endpoint_scalars_pinned_to_the_points(self):
        spec = WorkloadSpec.piecewise(((0.0, 0.2), (1.0, 0.9)))
        assert spec.start_fraction == pytest.approx(0.2)
        assert spec.end_fraction == pytest.approx(0.9)

    def test_peak_fraction_is_the_largest_breakpoint(self):
        spec = WorkloadSpec.piecewise(
            ((0.0, 0.3), (0.25, 0.9), (0.5, 0.4), (0.75, 1.0), (1.0, 0.3))
        )
        assert spec.peak_fraction(100.0) == pytest.approx(1.0)

    def test_points_canonicalised_and_hashable(self):
        from_lists = WorkloadSpec(kind="piecewise", points=([0, 1], [1, 2]))
        assert from_lists.points == ((0.0, 1.0), (1.0, 2.0))
        assert hash(from_lists) == hash(
            WorkloadSpec.piecewise(((0.0, 1.0), (1.0, 2.0)))
        )

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="at least two"):
            WorkloadSpec(kind="piecewise")
        with pytest.raises(ValueError, match="at least two"):
            WorkloadSpec.piecewise(((0.0, 0.5),))
        with pytest.raises(ValueError, match="span the whole horizon"):
            WorkloadSpec.piecewise(((0.1, 0.5), (1.0, 0.5)))
        with pytest.raises(ValueError, match="span the whole horizon"):
            WorkloadSpec.piecewise(((0.0, 0.5), (0.9, 0.5)))
        with pytest.raises(ValueError, match="strictly increase"):
            WorkloadSpec.piecewise(((0.0, 0.5), (0.5, 0.6), (0.5, 0.7), (1.0, 0.5)))
        with pytest.raises(ValueError, match="must be positive"):
            WorkloadSpec.piecewise(((0.0, 0.5), (0.5, 0.0), (1.0, 0.5)))
        with pytest.raises(ValueError, match="time, fraction"):
            WorkloadSpec(kind="piecewise", points=((0.0, 0.5, 1.0), (1.0, 0.5)))
        with pytest.raises(ValueError, match="only valid for kind='burst'"):
            WorkloadSpec(
                kind="piecewise",
                points=((0.0, 0.5), (1.0, 0.5)),
                burst_fraction=1.0,
            )


class TestValidation:
    def test_class_band_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ClassBand(fraction=0.5, low=1.0, high=0.0)

    def test_mix_fractions_must_sum_to_one(self):
        band = ClassBand(fraction=0.5, low=0.0, high=1.0)
        with pytest.raises(ValueError):
            PreferenceClassMix(low=band, medium=band, high=band)

    def test_capacity_mix_validates_ratios(self):
        with pytest.raises(ValueError):
            CapacityClassMix(medium_ratio=5.0, low_ratio=3.0)

    def test_query_spec_validation(self):
        with pytest.raises(ValueError):
            QueryClassSpec(costs=(130.0,), weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            QueryClassSpec(costs=(-1.0,), weights=(1.0,))

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="sinusoidal")
        with pytest.raises(ValueError):
            WorkloadSpec(kind="ramp", start_fraction=0.8, end_fraction=0.3)
        with pytest.raises(ValueError):
            WorkloadSpec.fixed(0.0)

    def test_departure_rules_validation(self):
        with pytest.raises(ValueError):
            DepartureRules(provider_reasons=("boredom",))
        with pytest.raises(ValueError):
            DepartureRules(starvation_fraction=1.5)
        with pytest.raises(ValueError):
            DepartureRules(overutilization_fraction=0.9)
        with pytest.raises(ValueError):
            DepartureRules(persistence=0)
        with pytest.raises(ValueError):
            DepartureRules(provider_basis="vibes")

    def test_autonomous_factory(self):
        rules = DepartureRules.autonomous(include_overutilization=False)
        assert rules.consumers_may_leave
        assert "overutilization" not in rules.provider_reasons
        assert "dissatisfaction" in rules.provider_reasons

    def test_captive_factory_disables_everything(self):
        rules = DepartureRules.captive()
        assert not rules.consumers_may_leave
        assert rules.provider_reasons == ()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_consumers=0)
        with pytest.raises(ValueError):
            SimulationConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(upsilon=2.0)
        with pytest.raises(ValueError):
            SimulationConfig(queries_per_request=0)
        with pytest.raises(ValueError):
            SimulationConfig(provider_pref_mode="per_mood")
        with pytest.raises(ValueError):
            SimulationConfig(consumer_intention_mode="telepathy")
        with pytest.raises(ValueError):
            SimulationConfig(warm_start_entries=10_000)
        with pytest.raises(ValueError):
            SimulationConfig(fixed_omega=1.5)

    def test_with_helpers_return_modified_copies(self):
        config = scaled_config()
        fixed = config.with_workload(WorkloadSpec.fixed(0.5))
        assert fixed.workload.kind == "fixed"
        assert config.workload.kind == "ramp"
        autonomous = config.with_departures(DepartureRules.autonomous())
        assert autonomous.departures.consumers_may_leave
        assert not config.departures.consumers_may_leave

    def test_config_is_hashable_for_memoisation(self):
        assert hash(scaled_config()) == hash(scaled_config())
        assert scaled_config() == scaled_config()
