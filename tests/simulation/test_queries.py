"""Tests for queries and the query factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.config import QueryClassSpec
from repro.simulation.queries import Query, QueryFactory


class TestQuery:
    def test_validation(self):
        with pytest.raises(ValueError):
            Query(qid=0, consumer=0, klass=0, cost_units=130.0,
                  n_desired=0, issued_at=0.0)
        with pytest.raises(ValueError):
            Query(qid=0, consumer=0, klass=0, cost_units=0.0,
                  n_desired=1, issued_at=0.0)


class TestQueryFactory:
    def test_ids_are_sequential(self, rng):
        factory = QueryFactory(QueryClassSpec(), n_desired=1, rng=rng)
        queries = [factory.create(0, float(i)) for i in range(5)]
        assert [q.qid for q in queries] == [0, 1, 2, 3, 4]
        assert factory.issued == 5

    def test_costs_match_drawn_class(self, rng):
        spec = QueryClassSpec(costs=(130.0, 150.0), weights=(0.5, 0.5))
        factory = QueryFactory(spec, n_desired=1, rng=rng)
        for _ in range(50):
            query = factory.create(3, 1.0)
            assert query.cost_units == spec.costs[query.klass]
            assert query.consumer == 3
            assert query.n_desired == 1

    def test_class_weights_respected(self, rng):
        spec = QueryClassSpec(costs=(130.0, 150.0), weights=(1.0, 0.0))
        factory = QueryFactory(spec, n_desired=1, rng=rng)
        classes = {factory.create(0, 0.0).klass for _ in range(20)}
        assert classes == {0}

    def test_roughly_balanced_default_mix(self, rng):
        factory = QueryFactory(QueryClassSpec(), n_desired=1, rng=rng)
        classes = np.array([factory.create(0, 0.0).klass for _ in range(400)])
        share = classes.mean()
        assert 0.4 < share < 0.6
