"""Tests for trace record/replay.

The headline contract: a replay under the recording method and seed is
byte-identical to the recording run (same series fingerprint the golden
tests freeze), and a replay under any other method sees literally the
same arrival stream — paired comparison with zero arrival-process
variance.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.store import cache_key
from repro.simulation.config import tiny_config
from repro.simulation.engine import ENGINE_VERSION, run_simulation
from repro.simulation.faults import FaultSpec, OutageSpec
from repro.simulation.trace import (
    SKIPPED,
    TRACE_FORMAT,
    load_trace,
    record_trace,
    replay_config,
    series_fingerprint,
    trace_digest,
)

from tests.experiments.test_golden import (
    SERIES_SHA256,
    autonomous_config,
    captive_config,
)


@pytest.fixture
def captive_trace(tmp_path):
    path = tmp_path / "captive.trace.json"
    result = record_trace(
        captive_config(), "sqlb", 5, path, scenario="captive_fixed_80"
    )
    return path, result


class TestRecording:
    def test_recording_does_not_perturb_the_run(self, captive_trace):
        _, result = captive_trace
        assert (
            series_fingerprint(result) == SERIES_SHA256[("captive", "sqlb")]
        )

    def test_file_schema(self, captive_trace):
        path, result = captive_trace
        payload = json.loads(path.read_bytes())
        assert payload["format"] == TRACE_FORMAT
        assert payload["engine_version"] == ENGINE_VERSION
        assert payload["method"] == "sqlb"
        assert payload["seed"] == 5
        assert payload["scenario"] == "captive_fixed_80"
        events = payload["events"]
        assert (
            len(events["times"])
            == len(events["consumers"])
            == len(events["klasses"])
        )
        assert events["times"] == sorted(events["times"])

    def test_loaded_trace_round_trips(self, captive_trace):
        path, result = captive_trace
        trace = load_trace(path)
        assert trace.method == "sqlb"
        assert trace.seed == 5
        assert trace.fingerprint == series_fingerprint(result)
        assert trace.issued == result.queries_issued
        assert trace.events >= trace.issued

    def test_refuses_to_record_a_replay(self, captive_trace, tmp_path):
        path, _ = captive_trace
        config = replay_config(captive_config(), path)
        with pytest.raises(ValueError, match="refusing to record"):
            record_trace(config, "sqlb", 5, tmp_path / "nested.json")


class TestReplay:
    def test_recording_method_replay_is_byte_identical(self, captive_trace):
        path, _ = captive_trace
        config = replay_config(captive_config(), path)
        replayed = run_simulation(config, "sqlb", seed=5)
        assert (
            series_fingerprint(replayed) == SERIES_SHA256[("captive", "sqlb")]
        )

    def test_replay_with_departures_is_byte_identical(self, tmp_path):
        """Autonomy runs record skipped arrivals; replay must trigger
        the sample/departure ladders at the same instants anyway."""
        path = tmp_path / "auto.trace.json"
        result = record_trace(autonomous_config(), "sqlb", 5, path)
        trace = load_trace(path)
        assert (trace.klasses == SKIPPED).sum() == trace.events - trace.issued
        config = replay_config(autonomous_config(), path)
        replayed = run_simulation(config, "sqlb", seed=5)
        assert series_fingerprint(replayed) == series_fingerprint(result)

    def test_other_method_sees_the_same_stream(self, captive_trace):
        path, result = captive_trace
        config = replay_config(captive_config(), path)
        other = run_simulation(config, "capacity", seed=5)
        np.testing.assert_array_equal(other.times(), result.times())
        assert other.queries_issued == result.queries_issued
        assert series_fingerprint(other) != series_fingerprint(result)

    def test_digest_pin_refuses_edited_file(self, captive_trace):
        path, _ = captive_trace
        config = replay_config(captive_config(), path)
        payload = json.loads(path.read_bytes())
        payload["seed"] = 6
        path.write_text(json.dumps(payload, sort_keys=True))
        with pytest.raises(ValueError, match="does not match"):
            run_simulation(config, "sqlb", seed=5)

    def test_population_mismatch_refused(self, captive_trace):
        path, _ = captive_trace
        wrong = tiny_config(duration=60.0, n_consumers=9)
        config = replay_config(wrong, path)
        with pytest.raises(ValueError, match="different environment"):
            run_simulation(config, "sqlb", seed=5)

    def test_garbage_file_refused(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="format"):
            load_trace(path)
        with pytest.raises(ValueError, match="cannot read"):
            load_trace(tmp_path / "missing.json")


class TestCacheKeys:
    """Replayed/faulted/strategic runs live under their own store keys,
    while ``None``-valued new fields leave pre-existing keys untouched."""

    def test_replay_config_gets_its_own_key(self, captive_trace):
        path, _ = captive_trace
        base = captive_config()
        replay = replay_config(base, path)
        assert cache_key(base, "sqlb", 5) != cache_key(replay, "sqlb", 5)

    def test_none_means_absent_not_empty(self):
        # None is dropped from the payload (pre-existing keys stay
        # valid); an *empty* FaultSpec is a present value and mints a
        # different key — the convention the FaultSpec docstring warns
        # about.
        base = captive_config()
        assert base.faults is None and base.strategic is None
        empty = base.with_faults(FaultSpec())
        assert cache_key(base, "sqlb", 5) != cache_key(empty, "sqlb", 5)

    def test_faults_change_the_key(self):
        base = captive_config()
        faulted = base.with_faults(
            FaultSpec(outages=(OutageSpec(0.25, 0.4, 0.6),))
        )
        assert cache_key(base, "sqlb", 5) != cache_key(faulted, "sqlb", 5)
