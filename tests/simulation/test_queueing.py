"""Tests for provider FIFO queues and response times."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.queueing import ProviderQueues


class TestProviderQueues:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProviderQueues(np.array([]))
        with pytest.raises(ValueError):
            ProviderQueues(np.array([100.0, 0.0]))

    def test_idle_provider_serves_immediately(self):
        queues = ProviderQueues(np.array([100.0]))
        completions = queues.assign(np.array([0]), 130.0, now=5.0)
        assert completions[0] == pytest.approx(6.3)

    def test_service_time_scales_with_capacity(self):
        """The paper's anchor: a 130-unit query takes 1.3 s at a
        high-capacity provider and 3× / 7× longer down the classes."""
        queues = ProviderQueues(np.array([100.0, 100.0 / 3, 100.0 / 7]))
        completions = queues.assign(np.array([0, 1, 2]), 130.0, now=0.0)
        assert completions[0] == pytest.approx(1.3)
        assert completions[1] == pytest.approx(3.9)
        assert completions[2] == pytest.approx(9.1)

    def test_fifo_backlog_accumulates(self):
        queues = ProviderQueues(np.array([100.0]))
        queues.assign(np.array([0]), 100.0, now=0.0)  # busy until 1.0
        completions = queues.assign(np.array([0]), 100.0, now=0.5)
        assert completions[0] == pytest.approx(2.0)
        assert queues.backlog_seconds(0.5)[0] == pytest.approx(1.5)

    def test_queue_drains_with_time(self):
        queues = ProviderQueues(np.array([100.0]))
        queues.assign(np.array([0]), 100.0, now=0.0)
        assert queues.backlog_seconds(5.0)[0] == 0.0
        completions = queues.assign(np.array([0]), 100.0, now=5.0)
        assert completions[0] == pytest.approx(6.0)

    def test_estimate_delay_is_wait_plus_service(self):
        queues = ProviderQueues(np.array([100.0, 50.0]))
        queues.assign(np.array([0]), 200.0, now=0.0)  # busy until 2.0
        delays = queues.estimate_delay(np.array([0, 1]), 100.0, now=1.0)
        assert delays[0] == pytest.approx(1.0 + 1.0)
        assert delays[1] == pytest.approx(0.0 + 2.0)

    def test_response_time_is_last_completion(self):
        queues = ProviderQueues(np.array([100.0, 10.0]))
        completions = queues.assign(np.array([0, 1]), 100.0, now=2.0)
        assert queues.response_time(completions, issued_at=2.0) == (
            pytest.approx(10.0)
        )

    def test_assignment_counters(self):
        queues = ProviderQueues(np.array([100.0, 100.0]))
        queues.assign(np.array([0]), 100.0, now=0.0)
        queues.assign(np.array([0]), 100.0, now=0.0)
        assert queues.completed_counts().tolist() == [2, 0]
        assert queues.busy_seconds()[0] == pytest.approx(2.0)

    def test_rejects_empty_assignment(self):
        queues = ProviderQueues(np.array([100.0]))
        with pytest.raises(ValueError):
            queues.assign(np.array([], dtype=int), 100.0, now=0.0)
        with pytest.raises(ValueError):
            queues.assign(np.array([0]), -5.0, now=0.0)
