"""Property-based invariants of the queueing and utilisation substrates."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.queueing import ProviderQueues
from repro.simulation.utilization import UtilizationTracker

arrival_traces = st.lists(
    st.tuples(
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),  # gap
        st.integers(min_value=0, max_value=2),  # provider
        st.floats(min_value=1.0, max_value=300.0, allow_nan=False),  # cost
    ),
    min_size=1,
    max_size=60,
)


class TestQueueInvariants:
    @given(arrival_traces)
    @settings(max_examples=60)
    def test_completions_never_precede_service_time(self, trace):
        capacities = np.array([100.0, 100.0 / 3, 100.0 / 7])
        queues = ProviderQueues(capacities)
        now = 0.0
        for gap, provider, cost in trace:
            now += gap
            completions = queues.assign(np.array([provider]), cost, now)
            # Completion is at least arrival + pure service time.
            assert completions[0] >= now + cost / capacities[provider] - 1e-9

    @given(arrival_traces)
    @settings(max_examples=60)
    def test_busy_until_is_monotone_per_provider(self, trace):
        queues = ProviderQueues(np.array([100.0, 50.0, 25.0]))
        now = 0.0
        last = np.zeros(3)
        for gap, provider, cost in trace:
            now += gap
            queues.assign(np.array([provider]), cost, now)
            current = queues.busy_until.copy()
            assert (current >= last - 1e-9).all()
            last = current

    @given(arrival_traces)
    @settings(max_examples=60)
    def test_total_busy_time_equals_work_over_capacity(self, trace):
        capacities = np.array([100.0, 50.0, 25.0])
        queues = ProviderQueues(capacities)
        expected = np.zeros(3)
        now = 0.0
        for gap, provider, cost in trace:
            now += gap
            queues.assign(np.array([provider]), cost, now)
            expected[provider] += cost / capacities[provider]
        assert np.allclose(queues.busy_seconds(), expected)


class TestUtilizationInvariants:
    @given(arrival_traces)
    @settings(max_examples=60)
    def test_utilization_is_non_negative_and_bounded_by_total_work(
        self, trace
    ):
        capacities = np.array([100.0, 50.0, 25.0])
        tracker = UtilizationTracker(capacities, window=10.0, bins=5)
        totals = np.zeros(3)
        now = 0.0
        for gap, provider, cost in trace:
            now += gap
            tracker.advance(now)
            tracker.assign(np.array([provider]), cost)
            totals[provider] += cost
            utilization = tracker.utilization()
            assert (utilization >= 0.0).all()
            # The window can never hold more than everything assigned.
            assert (
                utilization <= totals / (capacities * 10.0) + 1e-9
            ).all()

    @given(arrival_traces)
    @settings(max_examples=60)
    def test_advancing_beyond_window_always_clears(self, trace):
        tracker = UtilizationTracker(
            np.array([100.0, 50.0, 25.0]), window=10.0, bins=5
        )
        now = 0.0
        for gap, provider, cost in trace:
            now += gap
            tracker.advance(now)
            tracker.assign(np.array([provider]), cost)
        tracker.advance(now + 11.0)
        assert (tracker.utilization() == 0.0).all()
