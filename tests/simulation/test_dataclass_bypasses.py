"""Guards for the hot path's dataclass ``__init__`` bypasses.

The engine builds ``AllocationRequest`` (and ``QueryFactory`` builds
``Query``) via ``__new__`` + ``__dict__.update`` to skip the frozen
dataclass's per-field ``object.__setattr__`` — a measurable per-query
saving.  The bypass silently tolerates field-list drift (a new field
would simply be missing), so these tests pin the construction to the
dataclass definitions: they fail at the right place the moment someone
adds/renames a field or switches the classes to ``slots=True``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.allocation.base import AllocationMethod, AllocationRequest
from repro.simulation.config import QueryClassSpec, tiny_config
from repro.simulation.engine import MediatorSimulation
from repro.simulation.queries import Query, QueryFactory


class SpyMethod(AllocationMethod):
    """Captures the field names of every request it receives."""

    name = "spy"

    def __init__(self):
        self.seen_fields: set[str] | None = None

    def select(self, request):
        self.seen_fields = set(request.__dict__)
        return np.array([0])


def test_engine_request_bypass_populates_every_dataclass_field():
    spy = SpyMethod()
    sim = MediatorSimulation(tiny_config(duration=10.0), spy, seed=0)
    sim.run()
    expected = {field.name for field in dataclasses.fields(AllocationRequest)}
    assert spy.seen_fields == expected


def test_query_factory_bypass_populates_every_dataclass_field():
    factory = QueryFactory(QueryClassSpec(), 1, np.random.default_rng(0))
    query = factory.create(consumer=3, issued_at=1.5)
    expected = {field.name for field in dataclasses.fields(Query)}
    assert set(query.__dict__) == expected
    # The bypassed instance must also satisfy the dataclass's own
    # validation — round-trip it through the real constructor.
    clone = Query(**query.__dict__)
    assert clone == query
