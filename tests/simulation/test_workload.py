"""Tests for the Poisson arrival process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.workload import PoissonArrivals


class TestPoissonArrivals:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PoissonArrivals(lambda t: 1.0, peak_rate=0.0, duration=10.0, rng=rng)
        with pytest.raises(ValueError):
            PoissonArrivals(lambda t: 1.0, peak_rate=1.0, duration=0.0, rng=rng)

    def test_arrivals_are_increasing_and_within_horizon(self, rng):
        arrivals = list(
            PoissonArrivals(lambda t: 5.0, peak_rate=5.0, duration=50.0, rng=rng)
        )
        times = np.asarray(arrivals)
        assert np.all(np.diff(times) > 0)
        assert times.max() < 50.0

    def test_homogeneous_rate_statistics(self, rng):
        count = len(
            list(
                PoissonArrivals(
                    lambda t: 10.0, peak_rate=10.0, duration=400.0, rng=rng
                )
            )
        )
        # Expect 4000 ± ~3.2σ.
        assert abs(count - 4000) < 4 * np.sqrt(4000)

    def test_ramp_rate_produces_more_arrivals_late(self, rng):
        def rate(t):
            return 1.0 + 9.0 * (t / 200.0)

        times = np.asarray(
            list(
                PoissonArrivals(rate, peak_rate=10.0, duration=200.0, rng=rng)
            )
        )
        first_half = (times < 100.0).sum()
        second_half = (times >= 100.0).sum()
        # Expected 325 vs 775 arrivals: the later half dominates.
        assert second_half > 1.8 * first_half

    def test_rejects_rate_above_envelope(self, rng):
        arrivals = PoissonArrivals(
            lambda t: 20.0, peak_rate=10.0, duration=10.0, rng=rng
        )
        with pytest.raises(ValueError, match="exceeds the thinning envelope"):
            list(arrivals)

    def test_rejects_negative_rate(self, rng):
        arrivals = PoissonArrivals(
            lambda t: -1.0, peak_rate=10.0, duration=10.0, rng=rng
        )
        with pytest.raises(ValueError):
            list(arrivals)

    def test_deterministic_given_seed(self):
        def build():
            return list(
                PoissonArrivals(
                    lambda t: 3.0,
                    peak_rate=3.0,
                    duration=30.0,
                    rng=np.random.default_rng(11),
                )
            )

        assert build() == build()
