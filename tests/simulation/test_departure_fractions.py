"""Regression tests for SimulationResult departure fractions.

The fractions must always be taken over the run's *initial* population
(recorded explicitly on the result), count each participant at most
once, and agree with the end-of-run activity masks in ``final``.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.config import DepartureRules, WorkloadSpec, tiny_config
from repro.simulation.departures import DepartureRecord
from repro.simulation.engine import SimulationResult, run_simulation
from repro.simulation.stats import TimeSeriesCollector


def test_zero_departures_give_zero_fractions():
    result = run_simulation(tiny_config(duration=40.0), "sqlb", seed=3)
    assert result.departures == []
    assert result.provider_departure_fraction() == 0.0
    assert result.consumer_departure_fraction() == 0.0
    assert result.initial_providers == result.config.n_providers
    assert result.initial_consumers == result.config.n_consumers


def test_autonomous_fractions_use_initial_population():
    config = tiny_config(
        duration=120.0, workload=WorkloadSpec.fixed(1.0)
    ).with_departures(DepartureRules.autonomous(True))
    result = run_simulation(config, "capacity", seed=5)

    departed_providers = {
        d.index for d in result.departures if d.kind == "provider"
    }
    departed_consumers = {
        d.index for d in result.departures if d.kind == "consumer"
    }
    assert departed_providers  # this run is known to shed providers
    assert result.provider_departure_fraction() == len(
        departed_providers
    ) / float(config.n_providers)
    assert result.consumer_departure_fraction() == len(
        departed_consumers
    ) / float(config.n_consumers)

    # The record-based fraction must agree with the activity masks.
    inactive_providers = float(
        1.0 - np.mean(result.final["provider_active"])
    )
    inactive_consumers = float(
        1.0 - np.mean(result.final["consumer_active"])
    )
    assert result.provider_departure_fraction() == inactive_providers
    assert result.consumer_departure_fraction() == inactive_consumers
    assert 0.0 < result.provider_departure_fraction() <= 1.0


def _result_with_departures(records, initial_providers=0, initial_consumers=0):
    config = tiny_config()
    collector = TimeSeriesCollector.from_arrays(
        np.asarray([10.0]), {"utilization_mean": np.asarray([0.5])}
    )
    return SimulationResult(
        method_name="stub",
        seed=0,
        config=config,
        collector=collector,
        departures=records,
        initial_providers=initial_providers,
        initial_consumers=initial_consumers,
    )


def test_duplicate_records_count_each_participant_once():
    records = [
        DepartureRecord(kind="provider", index=4, time=1.0, reason="starvation"),
        DepartureRecord(
            kind="provider", index=4, time=2.0, reason="dissatisfaction"
        ),
        DepartureRecord(kind="provider", index=7, time=2.0, reason="starvation"),
    ]
    result = _result_with_departures(records, initial_providers=10)
    assert result.provider_departure_fraction() == 0.2


def test_hand_built_results_fall_back_to_config_population():
    records = [
        DepartureRecord(
            kind="consumer", index=0, time=1.0, reason="dissatisfaction"
        )
    ]
    result = _result_with_departures(records)
    assert result.initial_consumers == 0  # not recorded
    assert result.consumer_departure_fraction() == (
        1.0 / result.config.n_consumers
    )
