"""Integration tests for the mediator simulation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.config import (
    DepartureRules,
    WorkloadSpec,
    tiny_config,
)
from repro.simulation.engine import MediatorSimulation, run_simulation


@pytest.fixture(scope="module")
def sqlb_result():
    return run_simulation(tiny_config(), "sqlb", seed=7)


class TestCaptiveRun:
    def test_every_issued_query_is_served(self, sqlb_result):
        """Captive participants, universal matchmaker: nothing can be
        unserved (the paper only considers feasible queries)."""
        assert sqlb_result.queries_issued > 100
        assert sqlb_result.queries_served + sqlb_result.queries_unserved == (
            sqlb_result.queries_issued
        )
        assert sqlb_result.queries_unserved == 0

    def test_no_departures_when_captive(self, sqlb_result):
        assert sqlb_result.departures == []
        assert sqlb_result.final["provider_active"].all()
        assert sqlb_result.final["consumer_active"].all()

    def test_response_times_are_positive_and_sane(self, sqlb_result):
        assert sqlb_result.response_time_mean > 0
        # A 130-unit query at the fastest provider takes 1.3 s; nothing
        # can respond faster.
        assert sqlb_result.response_time_mean >= 1.3

    def test_expected_series_are_collected(self, sqlb_result):
        names = set(sqlb_result.collector.names)
        for required in (
            "provider_intention_satisfaction_mean",
            "provider_preference_satisfaction_mean",
            "provider_preference_allocation_satisfaction_mean",
            "provider_intention_satisfaction_fairness",
            "consumer_allocation_satisfaction_mean",
            "consumer_satisfaction_fairness",
            "utilization_mean",
            "utilization_fairness",
            "response_time_mean",
            "workload_fraction",
        ):
            assert required in names

    def test_sampling_grid_matches_interval(self, sqlb_result):
        times = sqlb_result.times()
        config = tiny_config()
        assert times[0] == pytest.approx(config.sample_interval)
        assert np.allclose(np.diff(times), config.sample_interval)
        assert times[-1] <= config.duration

    def test_satisfaction_series_in_range(self, sqlb_result):
        for name in (
            "provider_intention_satisfaction_mean",
            "provider_preference_satisfaction_mean",
            "consumer_satisfaction_mean",
        ):
            series = sqlb_result.series(name)
            finite = series[np.isfinite(series)]
            assert finite.min() >= 0.0
            assert finite.max() <= 1.0

    def test_workload_fraction_ramps(self, sqlb_result):
        fractions = sqlb_result.series("workload_fraction")
        assert fractions[0] < fractions[-1]
        assert fractions[-1] <= 1.0


class TestDeterminism:
    def test_same_seed_reproduces_run_exactly(self):
        config = tiny_config(duration=60.0)
        a = run_simulation(config, "sqlb", seed=13)
        b = run_simulation(config, "sqlb", seed=13)
        assert a.queries_issued == b.queries_issued
        assert a.response_time_mean == b.response_time_mean
        for name in a.collector.names:
            assert np.array_equal(
                a.series(name), b.series(name), equal_nan=True
            )

    def test_different_seeds_differ(self):
        config = tiny_config(duration=60.0)
        a = run_simulation(config, "sqlb", seed=13)
        b = run_simulation(config, "sqlb", seed=14)
        assert a.queries_issued != b.queries_issued or (
            a.response_time_mean != b.response_time_mean
        )

    def test_methods_share_the_environment(self):
        """Given one seed, the environment draws (capacities, classes)
        must be identical across methods — the paper's 'only the
        allocation changes' setup."""
        config = tiny_config(duration=30.0)
        a = MediatorSimulation(config, "sqlb", seed=5)
        b = MediatorSimulation(config, "capacity", seed=5)
        assert np.array_equal(a.capacity.rates, b.capacity.rates)
        assert np.array_equal(
            a.consumer_prefs.matrix, b.consumer_prefs.matrix
        )
        assert np.array_equal(
            a.provider_prefs.adaptation_classes,
            b.provider_prefs.adaptation_classes,
        )


class TestWorkloadScaling:
    def test_higher_workload_issues_more_queries(self):
        low = run_simulation(
            tiny_config(duration=100.0, workload=WorkloadSpec.fixed(0.3)),
            "capacity",
            seed=3,
        )
        high = run_simulation(
            tiny_config(duration=100.0, workload=WorkloadSpec.fixed(0.9)),
            "capacity",
            seed=3,
        )
        assert high.queries_issued > 2 * low.queries_issued

    def test_utilization_tracks_workload(self):
        result = run_simulation(
            tiny_config(duration=200.0, workload=WorkloadSpec.fixed(0.6)),
            "capacity",
            seed=3,
        )
        tail = result.series("utilization_mean")[-3:]
        assert 0.3 < np.nanmean(tail) < 0.9


class TestAutonomousRun:
    def test_departures_are_recorded_and_consistent(self):
        config = tiny_config(
            duration=200.0,
            workload=WorkloadSpec.fixed(0.8),
        ).with_departures(DepartureRules.autonomous(True))
        result = run_simulation(config, "capacity", seed=21)
        provider_departures = [
            d for d in result.departures if d.kind == "provider"
        ]
        # The final activity mask must agree with the departure log.
        inactive = (~result.final["provider_active"]).sum()
        assert inactive == len(provider_departures)
        for record in provider_departures:
            assert record.reason in (
                "dissatisfaction",
                "starvation",
                "overutilization",
            )
            assert 0 <= record.interest_class <= 2
            assert record.time >= config.warmup_time

    def test_fractions_match_counts(self):
        config = tiny_config(
            duration=200.0, workload=WorkloadSpec.fixed(0.8)
        ).with_departures(DepartureRules.autonomous(True))
        result = run_simulation(config, "capacity", seed=21)
        providers = sum(
            1 for d in result.departures if d.kind == "provider"
        )
        assert result.provider_departure_fraction() == pytest.approx(
            providers / config.n_providers
        )


class TestSelectionValidation:
    def test_broken_method_is_rejected(self):
        from repro.allocation.base import AllocationMethod

        class BrokenMethod(AllocationMethod):
            name = "broken"

            def select(self, request):
                return np.array([0, 0])  # duplicates

        config = tiny_config(duration=30.0)
        with pytest.raises(ValueError, match="duplicate|expected"):
            run_simulation(config, BrokenMethod(), seed=1)
