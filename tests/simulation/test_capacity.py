"""Tests for provider capacity generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.capacity import assign_capacities, draw_class_indices
from repro.simulation.config import CapacityClassMix


class TestDrawClassIndices:
    def test_exact_proportions_at_paper_scale(self, rng):
        classes = draw_class_indices(400, (0.10, 0.60, 0.30), rng)
        counts = np.bincount(classes, minlength=3)
        assert counts.tolist() == [40, 240, 120]

    def test_largest_remainder_rounding(self, rng):
        # 7 entities at (0.10, 0.60, 0.30): quotas 0.7 / 4.2 / 2.1.
        classes = draw_class_indices(7, (0.10, 0.60, 0.30), rng)
        counts = np.bincount(classes, minlength=3)
        assert counts.sum() == 7
        assert counts[1] >= 4  # medium keeps its floor

    def test_shuffled_assignment_is_not_index_correlated(self, rng):
        classes = draw_class_indices(300, (0.10, 0.60, 0.30), rng)
        # The first hundred must not be a single block of one class.
        assert len(set(classes[:100].tolist())) > 1

    def test_rejects_non_positive_n(self, rng):
        with pytest.raises(ValueError):
            draw_class_indices(0, (0.1, 0.6, 0.3), rng)


class TestAssignCapacities:
    def test_rates_follow_classes(self, rng):
        mix = CapacityClassMix()
        assignment = assign_capacities(100, mix, rng)
        low, medium, high = mix.rates
        expected = np.array([low, medium, high])[assignment.classes]
        assert np.allclose(assignment.rates, expected)

    def test_total_close_to_expected(self, rng):
        mix = CapacityClassMix()
        assignment = assign_capacities(400, mix, rng)
        expected = 400 * sum(
            r * f for r, f in zip(mix.rates, mix.fractions)
        )
        assert assignment.total == pytest.approx(expected, rel=0.01)

    def test_class_name_helper(self, rng):
        assignment = assign_capacities(10, CapacityClassMix(), rng)
        names = {assignment.class_name(i) for i in range(10)}
        assert names <= {"low", "medium", "high"}

    def test_deterministic_given_seed(self):
        a = assign_capacities(
            50, CapacityClassMix(), np.random.default_rng(5)
        )
        b = assign_capacities(
            50, CapacityClassMix(), np.random.default_rng(5)
        )
        assert np.array_equal(a.classes, b.classes)
