"""Tests for preference generation (Section 6.1 heterogeneity)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.config import (
    CONSUMER_INTEREST_MIX,
    PROVIDER_ADAPTATION_MIX,
)
from repro.simulation.preferences import (
    build_consumer_preferences,
    build_provider_preferences,
)


class TestConsumerPreferences:
    def test_matrix_shape(self, rng):
        prefs = build_consumer_preferences(
            20, 30, CONSUMER_INTEREST_MIX, rng
        )
        assert prefs.matrix.shape == (20, 30)

    def test_values_respect_interest_bands(self, rng):
        prefs = build_consumer_preferences(
            50, 100, CONSUMER_INTEREST_MIX, rng
        )
        bands = [(-1.0, -0.54), (-0.54, 0.34), (0.34, 1.0)]
        for provider in range(100):
            low, high = bands[prefs.interest_classes[provider]]
            column = prefs.matrix[:, provider]
            assert column.min() >= low - 1e-12
            assert column.max() <= high + 1e-12

    def test_interest_class_proportions(self, rng):
        prefs = build_consumer_preferences(
            5, 400, CONSUMER_INTEREST_MIX, rng
        )
        counts = np.bincount(prefs.interest_classes, minlength=3)
        assert counts.tolist() == [40, 120, 240]

    def test_for_consumer_slices_matrix(self, rng):
        prefs = build_consumer_preferences(
            4, 6, CONSUMER_INTEREST_MIX, rng
        )
        subset = np.array([1, 3, 5])
        assert np.array_equal(
            prefs.for_consumer(2, subset), prefs.matrix[2, subset]
        )


class TestProviderPreferences:
    def test_per_query_draws_vary(self, rng):
        prefs = build_provider_preferences(
            10, 2, PROVIDER_ADAPTATION_MIX, "per_query", rng
        )
        providers = np.arange(10)
        first = prefs.draw(providers, 0)
        second = prefs.draw(providers, 0)
        assert not np.array_equal(first, second)

    def test_per_query_class_draws_are_fixed(self, rng):
        prefs = build_provider_preferences(
            10, 2, PROVIDER_ADAPTATION_MIX, "per_query_class", rng
        )
        providers = np.arange(10)
        first = prefs.draw(providers, 1)
        second = prefs.draw(providers, 1)
        assert np.array_equal(first, second)
        # Different class, different (independent) draw.
        other = prefs.draw(providers, 0)
        assert not np.array_equal(first, other)

    def test_draws_respect_adaptation_bands(self, rng):
        prefs = build_provider_preferences(
            200, 2, PROVIDER_ADAPTATION_MIX, "per_query", rng
        )
        bands = [(-1.0, 0.2), (-0.6, 0.6), (-0.2, 1.0)]
        values = prefs.draw(np.arange(200), 0)
        for provider in range(200):
            low, high = bands[prefs.adaptation_classes[provider]]
            assert low - 1e-12 <= values[provider] <= high + 1e-12

    def test_adaptation_class_proportions(self, rng):
        prefs = build_provider_preferences(
            400, 2, PROVIDER_ADAPTATION_MIX, "per_query", rng
        )
        counts = np.bincount(prefs.adaptation_classes, minlength=3)
        assert counts.tolist() == [20, 240, 140]

    def test_rejects_unknown_mode(self, rng):
        with pytest.raises(ValueError):
            build_provider_preferences(
                5, 2, PROVIDER_ADAPTATION_MIX, "per_fortnight", rng
            )
