"""Tests for the vectorised participant pools.

The key test cross-checks the pools against the scalar reference
profiles in :mod:`repro.model` on random interaction traces: the
vectorised bookkeeping must implement exactly the same Definitions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.consumer_profile import ConsumerProfile
from repro.model.provider_profile import ProviderProfile
from repro.simulation.participants import (
    ConsumerPool,
    ProviderPool,
    ratio_with_zero_convention,
)


class TestRatioConvention:
    def test_plain_division(self):
        out = ratio_with_zero_convention(np.array([0.6]), np.array([0.5]))
        assert out[0] == pytest.approx(1.2)

    def test_zero_over_zero_is_neutral(self):
        out = ratio_with_zero_convention(np.array([0.0]), np.array([0.0]))
        assert out[0] == 1.0

    def test_positive_over_zero_is_inf(self):
        out = ratio_with_zero_convention(np.array([0.3]), np.array([0.0]))
        assert out[0] == np.inf


class TestConsumerPool:
    def test_initial_state(self):
        pool = ConsumerPool(5, memory=10, initial_satisfaction=0.5)
        assert pool.satisfactions().tolist() == [0.5] * 5
        assert pool.adequations().tolist() == [0.5] * 5
        assert pool.active_indices().tolist() == list(range(5))

    def test_record_and_aggregate(self):
        pool = ConsumerPool(2, memory=10, initial_satisfaction=0.5)
        pool.record_query(0, adequation=0.25, satisfaction=1.0)
        pool.record_query(0, adequation=0.75, satisfaction=0.0)
        assert pool.adequations()[0] == pytest.approx(0.5)
        assert pool.satisfactions()[0] == pytest.approx(0.5)
        # Consumer 1 untouched: still the initial values.
        assert pool.satisfactions()[1] == 0.5

    def test_deactivate(self):
        pool = ConsumerPool(3, memory=5, initial_satisfaction=0.5)
        pool.deactivate(1)
        assert pool.active_indices().tolist() == [0, 2]

    def test_allocation_satisfaction_vector(self):
        pool = ConsumerPool(1, memory=5, initial_satisfaction=0.5)
        pool.record_query(0, adequation=0.5, satisfaction=0.75)
        assert pool.allocation_satisfactions()[0] == pytest.approx(1.5)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1, allow_nan=False),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_matches_scalar_profile(self, trace):
        pool = ConsumerPool(1, memory=7, initial_satisfaction=0.5)
        profile = ConsumerProfile(k=7, initial_satisfaction=0.5)
        for adequation, satisfaction in trace:
            pool.record_query(0, adequation, satisfaction)
            profile._adequations.push(adequation)
            profile._satisfactions.push(satisfaction)
        assert pool.adequations()[0] == pytest.approx(
            profile.adequation(), abs=1e-9
        )
        assert pool.satisfactions()[0] == pytest.approx(
            profile.satisfaction(), abs=1e-9
        )


class TestProviderPool:
    def _pool(self, n=3, memory=6, warm=0):
        return ProviderPool(
            n, memory=memory, initial_satisfaction=0.5, warm_start_entries=warm
        )

    def test_warm_start_seeds_initial_satisfaction(self):
        pool = self._pool(warm=1)
        assert pool.satisfactions().tolist() == [0.5] * 3
        assert pool.adequations().tolist() == [0.5] * 3
        assert pool.proposed_counts().tolist() == [1] * 3

    def test_strict_definition_5_without_warm_start(self):
        pool = self._pool(warm=0)
        assert pool.satisfactions().tolist() == [0.0] * 3

    def test_record_proposals_updates_both_channels(self):
        pool = self._pool(warm=0)
        providers = np.array([0, 1])
        pool.record_proposals(
            providers,
            intentions=np.array([1.0, -1.0]),
            preferences=np.array([-1.0, 1.0]),
            performed=np.array([True, True]),
        )
        assert pool.satisfactions("intention")[0] == pytest.approx(1.0)
        assert pool.satisfactions("preference")[0] == pytest.approx(0.0)
        assert pool.satisfactions("intention")[1] == pytest.approx(0.0)
        assert pool.satisfactions("preference")[1] == pytest.approx(1.0)

    def test_starved_provider_has_zero_satisfaction(self):
        pool = self._pool(warm=0)
        for _ in range(4):
            pool.record_proposals(
                np.array([0]),
                intentions=np.array([0.8]),
                preferences=np.array([0.8]),
                performed=np.array([False]),
            )
        assert pool.adequations()[0] == pytest.approx(0.9)
        assert pool.satisfactions()[0] == 0.0
        assert pool.allocation_satisfactions()[0] == 0.0

    def test_warm_start_ages_out(self):
        pool = self._pool(memory=2, warm=1)
        for _ in range(2):
            pool.record_proposals(
                np.array([0]),
                intentions=np.array([0.5]),
                preferences=np.array([0.5]),
                performed=np.array([False]),
            )
        # Provider 0's warm entry was evicted: strict Definition 5.
        assert pool.satisfactions()[0] == 0.0
        # Untouched providers keep the warm-start value.
        assert pool.satisfactions()[1] == 0.5

    def test_rejects_unknown_basis(self):
        pool = self._pool()
        with pytest.raises(ValueError):
            pool.satisfactions("mood")

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.booleans(),
            ),
            min_size=0,
            max_size=50,
        )
    )
    @settings(max_examples=40)
    def test_matches_scalar_profile(self, trace):
        pool = ProviderPool(
            1, memory=9, initial_satisfaction=0.5, warm_start_entries=0
        )
        profile = ProviderProfile(k=9, initial_satisfaction=0.5)
        for intention, preference, performed in trace:
            pool.record_proposals(
                np.array([0]),
                intentions=np.array([intention]),
                preferences=np.array([preference]),
                performed=np.array([performed]),
            )
            profile.record_proposal(intention, preference, performed)
        for basis in ("intention", "preference"):
            assert pool.adequations(basis)[0] == pytest.approx(
                profile.adequation(basis), abs=1e-9
            )
            assert pool.satisfactions(basis)[0] == pytest.approx(
                profile.satisfaction(basis), abs=1e-9
            )
