"""Tests for the engine's cached candidate sets.

The engine caches ``matchmaker.candidates(...)`` per query class and
invalidates on the provider pool's epoch (bumped by every departure).
The cache invariant — cached candidates always equal a fresh
``np.flatnonzero``-style recomputation — is exercised here across
randomized departure sequences, for both cacheable matchmakers and a
custom non-cacheable one.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.config import tiny_config
from repro.simulation.engine import MediatorSimulation
from repro.simulation.matchmaking import CapabilityMatchmaker, Matchmaker
from repro.simulation.queries import Query


def make_query(klass=0):
    return Query(
        qid=0, consumer=0, klass=klass, cost_units=130.0, n_desired=1,
        issued_at=0.0,
    )


def build_sim(matchmaker=None):
    return MediatorSimulation(
        tiny_config(), "sqlb", seed=0, matchmaker=matchmaker
    )


class TestUniversalCandidateCache:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 1)),
            max_size=30,
        )
    )
    def test_cached_candidates_always_match_flatnonzero(self, ops):
        """Property: the cache is indistinguishable from recomputing."""
        sim = build_sim()
        for provider, klass in ops:
            np.testing.assert_array_equal(
                sim._candidates(make_query(klass)),
                np.flatnonzero(sim.providers.active),
            )
            sim.providers.deactivate(provider)
        np.testing.assert_array_equal(
            sim._candidates(make_query(0)),
            np.flatnonzero(sim.providers.active),
        )

    def test_cache_returns_same_object_between_departures(self):
        sim = build_sim()
        first = sim._candidates(make_query(0))
        assert sim._candidates(make_query(0)) is first

    def test_departure_invalidates_cache(self):
        sim = build_sim()
        before = sim._candidates(make_query(0))
        sim.providers.deactivate(3)
        after = sim._candidates(make_query(0))
        assert 3 in before
        assert 3 not in after
        assert after.size == before.size - 1

    def test_capacity_gather_tracks_candidates(self):
        sim = build_sim()
        for provider in (0, 5, 9):
            sim.providers.deactivate(provider)
            candidates, capacities = sim._candidate_entry(make_query(0))
            np.testing.assert_array_equal(
                capacities, sim.capacity.rates[candidates]
            )


class TestCapabilityCandidateCache:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 1)),
            max_size=30,
        ),
        seed=st.integers(0, 5),
    )
    def test_cached_candidates_respect_capability_and_activity(
        self, ops, seed
    ):
        capability = np.random.default_rng(seed).random((16, 2)) < 0.8
        capability[0, :] = True  # keep every class feasible
        sim = build_sim(matchmaker=CapabilityMatchmaker(capability))
        for provider, klass in ops:
            expected = np.flatnonzero(
                capability[:, klass] & sim.providers.active
            )
            np.testing.assert_array_equal(
                sim._candidates(make_query(klass)), expected
            )
            sim.providers.deactivate(provider)


class CountingMatchmaker(Matchmaker):
    """Depends on the consumer, so it must never be cached."""

    cacheable_by_class = False

    def __init__(self):
        self.calls = 0

    def candidates(self, query, active):
        self.calls += 1
        return np.flatnonzero(active)


class TestNonCacheableMatchmaker:
    def test_every_query_recomputes(self):
        matchmaker = CountingMatchmaker()
        sim = build_sim(matchmaker=matchmaker)
        for _ in range(5):
            sim._candidates(make_query(0))
        assert matchmaker.calls == 5
