"""Tests for the RNG plumbing."""

from __future__ import annotations

import pytest

from repro.simulation.rng import RngFactory, spawn_generators


class TestSpawnGenerators:
    def test_streams_are_independent_and_deterministic(self):
        first = spawn_generators(7, 3)
        second = spawn_generators(7, 3)
        for a, b in zip(first, second):
            assert a.random() == b.random()
        draws = {round(g.random(), 12) for g in spawn_generators(7, 3)}
        assert len(draws) == 3

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)


class TestRngFactory:
    def test_same_name_returns_same_generator(self):
        factory = RngFactory(3)
        assert factory.get("workload") is factory.get("workload")

    def test_different_names_give_different_streams(self):
        factory = RngFactory(3)
        a = factory.get("a").random()
        b = factory.get("b").random()
        assert a != b

    def test_deterministic_across_factories(self):
        one = RngFactory(3)
        two = RngFactory(3)
        assert one.get("x").random() == two.get("x").random()

    def test_names_records_creation_order(self):
        factory = RngFactory(1)
        factory.get("first")
        factory.get("second")
        assert factory.names() == ("first", "second")

    def test_seed_property(self):
        assert RngFactory(42).seed == 42
