"""Engine edge cases: multi-provider queries, capability constraints,
population collapse, and the configuration ablation hooks."""

from __future__ import annotations

import numpy as np

from repro.simulation.config import (
    DepartureRules,
    QueryClassSpec,
    WorkloadSpec,
    tiny_config,
)
from repro.simulation.engine import MediatorSimulation, run_simulation
from repro.simulation.matchmaking import CapabilityMatchmaker


class TestMultiProviderQueries:
    def test_qn_2_allocates_each_query_twice(self):
        config = tiny_config(duration=80.0, queries_per_request=2)
        result = run_simulation(config, "sqlb", seed=5)
        total_allocations = result.final["completed_counts"].sum()
        assert total_allocations == 2 * result.queries_served

    def test_qn_larger_than_population_selects_everyone(self):
        config = tiny_config(
            n_providers=3, duration=40.0, queries_per_request=10
        )
        result = run_simulation(config, "capacity", seed=5)
        counts = result.final["completed_counts"]
        # Every provider performs every query.
        assert (counts == result.queries_served).all()

    def test_consumer_satisfaction_accounts_for_missing_results(self):
        """With q.n = 10 but only 3 providers, δs(c, q) is diluted by
        the unmet demand (Equation 2 divides by q.n)."""
        config = tiny_config(
            n_providers=3, duration=60.0, queries_per_request=10
        )
        result = run_simulation(config, "sqlb", seed=5)
        satisfaction = result.series("consumer_satisfaction_mean")[-1]
        assert satisfaction < 0.75


class TestCapabilityMatchmaking:
    def test_specialised_providers_only_get_their_class(self):
        config = tiny_config(
            duration=80.0,
            query_classes=QueryClassSpec(
                costs=(100.0, 140.0), weights=(0.5, 0.5)
            ),
        )
        capability = np.zeros((config.n_providers, 2), dtype=bool)
        capability[: config.n_providers // 2, 0] = True
        capability[config.n_providers // 2 :, 1] = True
        simulation = MediatorSimulation(
            config,
            "capacity",
            seed=8,
            matchmaker=CapabilityMatchmaker(capability),
        )
        result = simulation.run()
        assert result.queries_unserved == 0
        assert result.queries_served > 0


class TestPopulationCollapse:
    def test_unserved_queries_counted_when_all_providers_leave(self):
        # Brutal rules: no persistence, generous thresholds → everyone
        # leaves quickly; later queries must be counted as unserved.
        rules = DepartureRules(
            consumers_may_leave=False,
            provider_reasons=("dissatisfaction",),
            dissatisfaction_margin=0.0,
            persistence=1,
        )
        config = tiny_config(
            duration=200.0,
            warmup_time=10.0,
            departure_check_interval=5.0,
            workload=WorkloadSpec.fixed(0.8),
        ).with_departures(rules)
        result = run_simulation(config, "capacity", seed=3)
        if not result.final["provider_active"].any():
            assert result.queries_unserved > 0
        assert (
            result.queries_served + result.queries_unserved
            == result.queries_issued
        )

    def test_departed_consumers_stop_issuing(self):
        rules = DepartureRules(
            consumers_may_leave=True, consumer_persistence=1
        )
        config = tiny_config(
            duration=200.0,
            warmup_time=10.0,
            departure_check_interval=5.0,
            workload=WorkloadSpec.fixed(0.8),
        ).with_departures(rules)
        captive = run_simulation(
            config.with_departures(DepartureRules.captive()),
            "capacity",
            seed=3,
        )
        autonomous = run_simulation(config, "capacity", seed=3)
        if any(d.kind == "consumer" for d in autonomous.departures):
            assert autonomous.queries_issued < captive.queries_issued


class TestConfigurationHooks:
    def test_formula_mode_uses_reputation(self):
        """υ = 0 makes consumer intentions pure reputation: two runs
        differing only in υ must allocate differently."""
        base = dict(duration=60.0, consumer_intention_mode="formula")
        pure_reputation = run_simulation(
            tiny_config(upsilon=0.0, **base), "sqlb", seed=6
        )
        pure_preference = run_simulation(
            tiny_config(upsilon=1.0, **base), "sqlb", seed=6
        )
        assert not np.array_equal(
            pure_reputation.final["completed_counts"],
            pure_preference.final["completed_counts"],
        )

    def test_fixed_omega_zero_serves_consumers(self):
        config = tiny_config(duration=150.0, fixed_omega=0.0)
        result = run_simulation(config, "sqlb", seed=6)
        assert (
            result.series("consumer_allocation_satisfaction_mean")[-1]
            >= 1.0
        )

    def test_fixed_provider_satisfaction_changes_intentions(self):
        eager = run_simulation(
            tiny_config(duration=60.0, fixed_provider_satisfaction=0.0),
            "sqlb",
            seed=6,
        )
        shedding = run_simulation(
            tiny_config(duration=60.0, fixed_provider_satisfaction=1.0),
            "sqlb",
            seed=6,
        )
        assert not np.array_equal(
            eager.final["completed_counts"],
            shedding.final["completed_counts"],
        )

    def test_per_query_class_mode_runs(self):
        config = tiny_config(
            duration=60.0, provider_pref_mode="per_query_class"
        )
        result = run_simulation(config, "sqlb", seed=6)
        assert result.queries_served == result.queries_issued

    def test_warm_start_zero_runs(self):
        config = tiny_config(duration=60.0, warm_start_entries=0)
        result = run_simulation(config, "sqlb", seed=6)
        assert result.queries_served == result.queries_issued
