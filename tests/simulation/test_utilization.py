"""Tests for the sliding-window utilisation tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.utilization import UtilizationTracker


def make_tracker(capacities=(100.0, 50.0), window=10.0, bins=5):
    return UtilizationTracker(np.asarray(capacities), window, bins)


class TestUtilizationTracker:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_tracker(window=0.0)
        with pytest.raises(ValueError):
            make_tracker(bins=0)
        with pytest.raises(ValueError):
            make_tracker(capacities=(0.0,))
        with pytest.raises(ValueError):
            UtilizationTracker(np.zeros((2, 2)) + 1, 10.0, 5)

    def test_starts_idle(self):
        tracker = make_tracker()
        assert tracker.utilization().tolist() == [0.0, 0.0]

    def test_paper_anchor_proportional_assignment(self):
        """At X % workload, proportional assignment gives Ut = X/100."""
        tracker = make_tracker(capacities=(100.0, 50.0), window=10.0)
        # 80 % of each provider's capacity over the full window.
        tracker.assign(np.array([0]), 0.8 * 100.0 * 10.0)
        tracker.assign(np.array([1]), 0.8 * 50.0 * 10.0)
        assert tracker.utilization().tolist() == pytest.approx([0.8, 0.8])

    def test_can_exceed_one_under_overload(self):
        tracker = make_tracker()
        tracker.assign(np.array([0]), 3000.0)  # 3 windows' worth
        assert tracker.utilization()[0] == pytest.approx(3.0)

    def test_work_ages_out_after_window(self):
        tracker = make_tracker(window=10.0, bins=5)
        tracker.assign(np.array([0]), 500.0)
        tracker.advance(10.0 + 2.0)  # beyond the full window
        assert tracker.utilization()[0] == 0.0

    def test_partial_ageing_drops_only_old_bins(self):
        tracker = make_tracker(window=10.0, bins=5)
        tracker.assign(np.array([0]), 500.0)  # lands in bin 0
        tracker.advance(4.0)  # two bins later; work still in window
        assert tracker.utilization()[0] == pytest.approx(0.5)
        tracker.advance(9.9)  # still inside the window
        assert tracker.utilization()[0] == pytest.approx(0.5)
        tracker.advance(12.1)  # now beyond it
        assert tracker.utilization()[0] == 0.0

    def test_time_cannot_go_backwards(self):
        tracker = make_tracker()
        tracker.advance(5.0)
        with pytest.raises(ValueError):
            tracker.advance(1.0)

    def test_duplicate_providers_accumulate(self):
        tracker = make_tracker()
        tracker.assign(np.array([0, 0]), 100.0)
        assert tracker.utilization()[0] == pytest.approx(0.2)

    def test_utilization_of_subset(self):
        tracker = make_tracker(capacities=(100.0, 50.0, 25.0))
        tracker.assign(np.array([2]), 125.0)
        subset = tracker.utilization_of(np.array([2, 0]))
        assert subset.tolist() == pytest.approx([0.5, 0.0])

    def test_reset_clears_work(self):
        tracker = make_tracker()
        tracker.assign(np.array([0]), 100.0)
        tracker.reset()
        assert tracker.utilization()[0] == 0.0

    def test_sliding_window_statistics_match_bruteforce(self):
        """Property-style check against an explicit event list."""
        rng = np.random.default_rng(9)
        tracker = make_tracker(capacities=(40.0,), window=8.0, bins=4)
        events = []
        time = 0.0
        for _ in range(300):
            time += rng.exponential(0.3)
            units = rng.uniform(1.0, 30.0)
            tracker.advance(time)
            tracker.assign(np.array([0]), units)
            events.append((time, units))
            # Brute force: bins quantise time.  An event is retained iff
            # the bin it landed in (the grid-aligned floor of its
            # timestamp) is one of the last `bins` bins.
            width = 8.0 / 4
            cutoff = tracker._bin_start - 8.0 + width
            expected = sum(
                u
                for t, u in events
                if np.floor(t / width) * width >= cutoff - 1e-9
            )
            assert tracker.utilization()[0] == pytest.approx(
                expected / (40.0 * 8.0), abs=1e-9
            )
