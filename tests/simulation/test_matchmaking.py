"""Tests for the matchmaking abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.matchmaking import (
    CapabilityMatchmaker,
    UniversalMatchmaker,
)
from repro.simulation.queries import Query


def make_query(klass=0):
    return Query(
        qid=0, consumer=0, klass=klass, cost_units=130.0, n_desired=1,
        issued_at=0.0,
    )


class TestUniversalMatchmaker:
    def test_returns_all_active_providers(self):
        active = np.array([True, False, True, True])
        candidates = UniversalMatchmaker().candidates(make_query(), active)
        assert candidates.tolist() == [0, 2, 3]

    def test_empty_when_no_active_provider(self):
        active = np.zeros(3, dtype=bool)
        assert UniversalMatchmaker().candidates(make_query(), active).size == 0


class TestCapabilityMatchmaker:
    def test_filters_by_query_class_and_activity(self):
        capability = np.array(
            [[True, False], [True, True], [False, True]]
        )
        matchmaker = CapabilityMatchmaker(capability)
        active = np.array([True, True, False])
        assert matchmaker.candidates(make_query(0), active).tolist() == [0, 1]
        assert matchmaker.candidates(make_query(1), active).tolist() == [1]

    def test_rejects_infeasible_query_class(self):
        capability = np.array([[True, False], [True, False]])
        with pytest.raises(ValueError, match="feasible"):
            CapabilityMatchmaker(capability)

    def test_rejects_unknown_class_at_lookup(self):
        matchmaker = CapabilityMatchmaker(np.array([[True]]))
        with pytest.raises(ValueError):
            matchmaker.candidates(make_query(3), np.array([True]))

    def test_rejects_non_2d_matrix(self):
        with pytest.raises(ValueError):
            CapabilityMatchmaker(np.array([True, False]))
