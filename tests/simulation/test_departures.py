"""Tests for the departure policy (Section 6.3.2 thresholds)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.config import DepartureRules
from repro.simulation.departures import DeparturePolicy
from repro.simulation.participants import ConsumerPool, ProviderPool


def make_policy(rules, n_providers=4, warm=0):
    classes = np.zeros(n_providers, dtype=int)
    return DeparturePolicy(
        rules,
        interest_classes=classes,
        adaptation_classes=classes + 1,
        capacity_classes=classes + 2,
        warm_start_entries=warm,
    )


def punished_consumer_pool(n=2, queries=15):
    """Consumers that always get their worst provider."""
    pool = ConsumerPool(n, memory=50, initial_satisfaction=0.5)
    for consumer in range(n):
        for _ in range(queries):
            pool.record_query(consumer, adequation=0.6, satisfaction=0.2)
    return pool


def starved_provider_pool(n=4, proposals=15):
    """Providers proposed plenty of adequate queries, performing none."""
    pool = ProviderPool(
        n, memory=50, initial_satisfaction=0.5, warm_start_entries=0
    )
    for _ in range(proposals):
        pool.record_proposals(
            np.arange(n),
            intentions=np.full(n, 0.8),
            preferences=np.full(n, 0.8),
            performed=np.zeros(n, dtype=bool),
        )
    return pool


class TestConsumerDepartures:
    def test_disabled_when_captive(self):
        policy = make_policy(DepartureRules.captive())
        pool = punished_consumer_pool()
        assert policy.check_consumers(1.0, pool) == []

    def test_punished_consumer_leaves_after_persistence(self):
        rules = DepartureRules(
            consumers_may_leave=True, consumer_persistence=3
        )
        policy = make_policy(rules)
        pool = punished_consumer_pool(n=2)
        assert policy.check_consumers(1.0, pool) == []
        assert policy.check_consumers(2.0, pool) == []
        records = policy.check_consumers(3.0, pool)
        assert len(records) == 2
        assert all(r.reason == "dissatisfaction" for r in records)
        assert not pool.active.any()

    def test_recovery_resets_streak(self):
        rules = DepartureRules(
            consumers_may_leave=True, consumer_persistence=2
        )
        policy = make_policy(rules)
        pool = punished_consumer_pool(n=1)
        assert policy.check_consumers(1.0, pool) == []
        # Consumer recovers: satisfaction climbs above adequation.
        for _ in range(40):
            pool.record_query(0, adequation=0.2, satisfaction=0.9)
        assert policy.check_consumers(2.0, pool) == []
        assert policy.check_consumers(3.0, pool) == []

    def test_uninformed_consumers_are_not_judged(self):
        rules = DepartureRules(
            consumers_may_leave=True, consumer_persistence=1
        )
        policy = make_policy(rules)
        pool = punished_consumer_pool(n=1, queries=3)  # below threshold
        assert policy.check_consumers(1.0, pool) == []

    def test_resized_pool_is_rejected_loudly(self):
        rules = DepartureRules(
            consumers_may_leave=True, consumer_persistence=3
        )
        policy = make_policy(rules)
        policy.check_consumers(1.0, punished_consumer_pool(n=2))
        with pytest.raises(ValueError, match="resizing pools"):
            policy.check_consumers(2.0, punished_consumer_pool(n=3))


class TestProviderDepartures:
    def _utilization(self, n=4, value=0.8):
        return np.full(n, value)

    def test_dissatisfaction_threshold_with_margin(self):
        rules = DepartureRules(
            provider_reasons=("dissatisfaction",), persistence=1
        )
        policy = make_policy(rules)
        pool = starved_provider_pool()
        records = policy.check_providers(
            5.0, pool, self._utilization(), optimal_utilization=0.8
        )
        # δs = 0 < δa (0.9) - 0.15 for everyone.
        assert len(records) == 4
        assert all(r.reason == "dissatisfaction" for r in records)
        assert records[0].adaptation_class == 1
        assert records[0].capacity_class == 2

    def test_margin_protects_mild_dissatisfaction(self):
        rules = DepartureRules(
            provider_reasons=("dissatisfaction",), persistence=1
        )
        policy = make_policy(rules, n_providers=1)
        pool = ProviderPool(
            1, memory=50, initial_satisfaction=0.5, warm_start_entries=0
        )
        for _ in range(15):
            # δa ≈ 0.75, δs = 0.7: inside the 0.15 margin.
            pool.record_proposals(
                np.array([0]),
                intentions=np.array([0.5]),
                preferences=np.array([0.5]),
                performed=np.array([False]),
            )
            pool.record_proposals(
                np.array([0]),
                intentions=np.array([0.4]),
                preferences=np.array([0.4]),
                performed=np.array([True]),
            )
        records = policy.check_providers(
            5.0, pool, np.array([0.8]), optimal_utilization=0.8
        )
        assert records == []

    def test_starvation_and_overutilization_thresholds(self):
        rules = DepartureRules(
            provider_reasons=("starvation", "overutilization"),
            persistence=1,
        )
        policy = make_policy(rules)
        pool = ProviderPool(
            4, memory=50, initial_satisfaction=0.5, warm_start_entries=0
        )
        for _ in range(15):
            pool.record_proposals(
                np.arange(4),
                intentions=np.full(4, 0.5),
                preferences=np.full(4, 0.5),
                performed=np.ones(4, dtype=bool),
            )
        utilization = np.array([0.10, 0.17, 1.70, 1.80])
        records = policy.check_providers(
            5.0, pool, utilization, optimal_utilization=0.8
        )
        reasons = {r.index: r.reason for r in records}
        # Thresholds at 80 % workload: starve < 0.16, overuse > 1.76.
        assert reasons == {0: "starvation", 3: "overutilization"}

    def test_persistence_requires_consecutive_trips(self):
        rules = DepartureRules(
            provider_reasons=("overutilization",), persistence=2
        )
        policy = make_policy(rules, n_providers=1)
        pool = ProviderPool(
            1, memory=50, initial_satisfaction=0.5, warm_start_entries=0
        )
        for _ in range(15):
            pool.record_proposals(
                np.array([0]),
                intentions=np.array([0.5]),
                preferences=np.array([0.5]),
                performed=np.array([True]),
            )
        hot = np.array([2.0])
        cool = np.array([0.8])
        assert policy.check_providers(1.0, pool, hot, 0.8) == []
        assert policy.check_providers(2.0, pool, cool, 0.8) == []
        assert policy.check_providers(3.0, pool, hot, 0.8) == []
        records = policy.check_providers(4.0, pool, hot, 0.8)
        assert len(records) == 1
        assert not pool.active[0]

    def test_reason_priority_prefers_dissatisfaction(self):
        rules = DepartureRules(
            provider_reasons=(
                "dissatisfaction",
                "starvation",
                "overutilization",
            ),
            persistence=1,
        )
        policy = make_policy(rules)
        pool = starved_provider_pool()
        # Starved *and* dissatisfied: classified as dissatisfaction.
        records = policy.check_providers(
            5.0, pool, np.full(4, 0.01), optimal_utilization=0.8
        )
        assert all(r.reason == "dissatisfaction" for r in records)

    def test_resized_pool_is_rejected_loudly(self):
        """The lazy streak arrays are positional: a pool of a different
        size must trip the guard, never silently mis-attribute."""
        rules = DepartureRules(
            provider_reasons=("overutilization",), persistence=2
        )
        policy = make_policy(rules)
        pool = starved_provider_pool(n=4)
        policy.check_providers(1.0, pool, self._utilization(), 0.8)
        bigger = starved_provider_pool(n=5)
        with pytest.raises(ValueError, match="resizing pools"):
            policy.check_providers(
                2.0, bigger, self._utilization(n=5), 0.8
            )

    def test_departed_providers_not_rechecked(self):
        rules = DepartureRules(
            provider_reasons=("dissatisfaction",), persistence=1
        )
        policy = make_policy(rules)
        pool = starved_provider_pool()
        first = policy.check_providers(1.0, pool, self._utilization(), 0.8)
        assert len(first) == 4
        second = policy.check_providers(2.0, pool, self._utilization(), 0.8)
        assert second == []
