"""Tests for the reliability layer: failpoints, retry_io, durability."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.store import _atomic_write_bytes
from repro.reliability import (
    CRASH_EXIT_CODE,
    FAILPOINTS_ENV,
    FAILPOINTS_SEED_ENV,
    FailpointError,
    configure_failpoints,
    durable_writes_session,
    failpoint,
    failpoints_session,
    get_failpoints,
    parse_failpoints,
    retry_io,
    torn_payload,
    trip_counts,
)
from repro.reliability.durability import fsync_dir
from repro.telemetry.registry import telemetry_session


class TestParsing:
    def test_nth_hit_policy(self):
        registry = parse_failpoints("site.a:raise:3")
        rule = registry._rules[0]
        assert (rule.pattern, rule.action, rule.nth) == ("site.a", "raise", 3)

    def test_every_k_policy(self):
        registry = parse_failpoints("site.a:enospc:every-2")
        assert registry._rules[0].every == 2

    def test_probability_policy(self):
        registry = parse_failpoints("site.a:torn:p0.25")
        assert registry._rules[0].probability == 0.25

    def test_multiple_clauses(self):
        registry = parse_failpoints("a:raise:1, b:crash:every-5 ,c:torn:p1.0")
        assert [rule.pattern for rule in registry._rules] == ["a", "b", "c"]

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "a:raise",  # missing policy
            "a:explode:1",  # unknown action
            "a:raise:0",  # nth must be >= 1
            "a:raise:every-0",  # every must be >= 1
            "a:raise:p1.5",  # probability out of range
            "a:raise:soon",  # unparseable policy
            ":raise:1",  # empty site
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec):
        # A typo'd chaos spec must never silently inject nothing.
        with pytest.raises(ValueError):
            parse_failpoints(spec)


class TestPolicies:
    def test_nth_hit_fires_exactly_once(self):
        with failpoints_session("s:raise:2"):
            failpoint("s")  # hit 1: pass
            with pytest.raises(FailpointError):
                failpoint("s")  # hit 2: fire
            failpoint("s")  # hit 3: pass again
            assert trip_counts() == {"s": 1}

    def test_every_k_fires_periodically(self):
        with failpoints_session("s:raise:every-3"):
            fired = 0
            for _ in range(9):
                try:
                    failpoint("s")
                except FailpointError:
                    fired += 1
            assert fired == 3

    def test_probability_draws_from_dedicated_seeded_rng(self):
        def fire_pattern(seed: int) -> list[bool]:
            pattern = []
            with failpoints_session("s:raise:p0.5", seed=seed):
                for _ in range(20):
                    try:
                        failpoint("s")
                        pattern.append(False)
                    except FailpointError:
                        pattern.append(True)
            return pattern

        assert fire_pattern(1) == fire_pattern(1)  # deterministic
        assert fire_pattern(1) != fire_pattern(2)  # seed-sensitive
        assert any(fire_pattern(1))

    def test_glob_matches_site_families(self):
        with failpoints_session("queue.*:raise:every-1"):
            with pytest.raises(FailpointError):
                failpoint("queue.ack.before_done")
            with pytest.raises(FailpointError):
                failpoint("queue.heartbeat")
            failpoint("store.write.data")  # unmatched: never fires

    def test_enospc_action_carries_errno(self):
        import errno

        with failpoints_session("s:enospc:1"):
            with pytest.raises(FailpointError) as excinfo:
                failpoint("s")
            assert excinfo.value.errno == errno.ENOSPC

    def test_injected_errors_are_oserrors(self):
        # Every transient-fault handler in the repo catches OSError;
        # injected faults must flow through those same paths.
        assert issubclass(FailpointError, OSError)


class TestTornPayload:
    def test_torn_rule_truncates_payload(self):
        with failpoints_session("s:torn:1"):
            assert torn_payload("s", b"0123456789") == b"01234"
            assert torn_payload("s", b"0123456789") is None  # once

    def test_non_torn_rules_ignore_payload_path(self):
        with failpoints_session("s:raise:1"):
            assert torn_payload("s", b"abc") is None
            # ...and the raise rule did not consume its hit there.
            with pytest.raises(FailpointError):
                failpoint("s")

    def test_atomic_writer_never_touches_final_path(self, tmp_path):
        target = tmp_path / "record.json"
        with failpoints_session("store.write.data:torn:1"):
            with pytest.raises(OSError, match="torn write"):
                _atomic_write_bytes(target, b"payload-bytes")
        assert not target.exists()


class TestRegistryLifecycle:
    def test_disabled_is_a_noop(self):
        configure_failpoints(None)
        assert get_failpoints() is None
        failpoint("anything")  # must not raise
        assert torn_payload("anything", b"x") is None
        assert trip_counts() == {}

    def test_environment_resolution(self, monkeypatch):
        monkeypatch.setenv(FAILPOINTS_ENV, "s:raise:1")
        monkeypatch.setenv(FAILPOINTS_SEED_ENV, "9")
        configure_failpoints(None)
        # Force lazy re-resolution from the (patched) environment.
        import repro.reliability.failpoints as module

        module._resolved = False
        registry = get_failpoints()
        assert registry is not None
        with pytest.raises(FailpointError):
            registry.hit("s")

    def test_session_restores_previous_state(self):
        configure_failpoints("outer:raise:1")
        with failpoints_session("inner:raise:1"):
            assert get_failpoints()._rules[0].pattern == "inner"
        assert get_failpoints()._rules[0].pattern == "outer"
        configure_failpoints(None)

    def test_crash_action_exits_with_crash_code(self, tmp_path):
        # os._exit cannot be tested in-process by definition.
        code = (
            "from repro.reliability import failpoint\n"
            "failpoint('boom')\n"
            "print('survived')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={
                **os.environ,
                FAILPOINTS_ENV: "boom:crash:1",
                "PYTHONPATH": str(
                    Path(__file__).resolve().parents[2] / "src"
                ),
            },
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == CRASH_EXIT_CODE
        assert "survived" not in result.stdout


class TestRetryIo:
    def test_returns_value_on_first_success(self):
        assert retry_io(lambda: 42, "site") == 42

    def test_retries_transient_oserrors(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("flaky")
            return "ok"

        slept = []
        assert (
            retry_io(flaky, "site", base_delay=0.01, sleep=slept.append)
            == "ok"
        )
        assert len(calls) == 3
        # Exponential, deterministic (no jitter — RNG is forbidden on
        # scheduler paths).
        assert slept == [0.01, 0.02]

    def test_reraises_after_budget(self):
        def always():
            raise OSError("permanent")

        slept = []
        with pytest.raises(OSError, match="permanent"):
            retry_io(always, "site", attempts=3, sleep=slept.append)
        assert len(slept) == 2  # no sleep after the final failure

    def test_backoff_is_capped(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 5:
                raise OSError("x")
            return None

        slept = []
        retry_io(
            flaky,
            "site",
            attempts=5,
            base_delay=1.0,
            max_delay=3.0,
            sleep=slept.append,
        )
        assert slept == [1.0, 2.0, 3.0, 3.0]

    def test_non_oserror_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bug, not weather")

        with pytest.raises(ValueError):
            retry_io(broken, "site", sleep=lambda _: None)
        assert len(calls) == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            retry_io(lambda: 1, "site", attempts=0)

    def test_retries_are_counted_into_telemetry(self, tmp_path):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("x")
            return None

        with telemetry_session(tmp_path) as telemetry:
            retry_io(flaky, "mysite", sleep=lambda _: None)
            counters = dict(telemetry.counters)
        assert counters["reliability.retry"] == 1
        assert counters["reliability.retry.mysite"] == 1


class TestDurability:
    def test_disabled_by_default(self, tmp_path):
        # No env, no override: the writer must not fsync (we can only
        # assert behaviourally that writes still work and the flag
        # reads false).
        from repro.reliability import durable_writes_enabled

        assert durable_writes_enabled() is False
        _atomic_write_bytes(tmp_path / "x", b"data")
        assert (tmp_path / "x").read_bytes() == b"data"

    def test_durable_write_round_trips(self, tmp_path):
        with durable_writes_session(True):
            _atomic_write_bytes(tmp_path / "x", b"durable-data")
        assert (tmp_path / "x").read_bytes() == b"durable-data"

    def test_env_truthy_values(self, monkeypatch):
        from repro.reliability import (
            configure_durable_writes,
            durable_writes_enabled,
        )

        for raw, expected in (
            ("1", True),
            ("true", True),
            ("ON", True),
            ("0", False),
            ("", False),
            ("no", False),
        ):
            monkeypatch.setenv("REPRO_DURABLE_WRITES", raw)
            configure_durable_writes(None)  # drop the cache
            assert durable_writes_enabled() is expected, raw

    def test_fsync_dir_tolerates_unsyncable_paths(self, tmp_path):
        fsync_dir(tmp_path)  # a real directory: must not raise
        fsync_dir(tmp_path / "missing")  # ENOENT: silently degrades
