"""Chaos soak: a real fleet under injected crashes still converges.

The end-to-end promise of the reliability stack: run a supervised
fleet of genuine ``repro queue work`` subprocesses with hard-crash
failpoints armed through the environment, and the sweep still drains,
``queue fsck`` finds a clean queue, and every stored payload is
byte-identical to an uninjected run of the same grid.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.experiments.executor import ExperimentExecutor
from repro.experiments.store import ResultStore
from repro.reliability import FAILPOINTS_ENV
from repro.scheduler.fleet import FleetSupervisor, spawn_cli_worker
from repro.scheduler.fsck import fsck_queue
from repro.scheduler.monitor import queue_report
from repro.scheduler.queue import WorkQueue
from repro.scheduler.worker import QueueWorker
from repro.sweeps.spec import SweepSpec

TTL = 30.0
SRC = Path(__file__).resolve().parents[2] / "src"

#: Crash on the second worker-loop iteration: every child completes at
#: most one job per life, then dies between jobs.  (Per-process nth-hit
#: counters reset on restart, so a first-iteration crash would re-fire
#: forever; the second-iteration crash self-quenches once the queue is
#: empty because an idle worker exits on its first look.)
CHAOS = "worker.loop:crash:2"


def spec() -> SweepSpec:
    return SweepSpec(
        name="soak",
        scenarios=("captive_fixed_80",),
        methods=("sqlb", "capacity"),
        seeds=(1, 2),
        scale="tiny",
    )


def store_bytes(root: Path) -> dict[str, bytes]:
    # Top-level payload halves only: manifests/ legitimately differs
    # between runs (owner names, wall-clock timings) and temp litter
    # is dot-prefixed.
    return {
        path.name: path.read_bytes()
        for path in sorted(root.iterdir())
        if path.is_file() and not path.name.startswith(".")
    }


def report_json(queue: WorkQueue, store: ResultStore) -> str:
    executor = ExperimentExecutor(workers=1, store=store)
    summaries = queue_report(queue, executor=executor)
    return json.dumps(
        [dataclasses.asdict(summary) for summary in summaries],
        sort_keys=True,
        default=str,
    )


def test_chaos_fleet_converges_to_uninjected_results(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("PYTHONPATH", str(SRC))

    # Control: the same grid drained by one clean in-process worker.
    control_queue = WorkQueue.init(tmp_path / "control-q", spec())
    control_store = ResultStore(tmp_path / "control-store")
    QueueWorker(
        control_queue,
        executor=ExperimentExecutor(workers=1, store=control_store),
        owner="control",
        ttl=TTL,
    ).run()
    assert control_queue.counts().drained

    # Chaos: a supervised fleet of real subprocess workers, each
    # hard-crashing (os._exit) between jobs; the env var propagates
    # through spawn_cli_worker's environment inheritance.
    chaos_queue = WorkQueue.init(tmp_path / "chaos-q", spec())
    monkeypatch.setenv(FAILPOINTS_ENV, CHAOS)
    events: list[str] = []
    supervisor = FleetSupervisor(
        spawn_cli_worker(
            tmp_path / "chaos-q",
            tmp_path / "chaos-store",
            ("--ttl", str(TTL), "--poll", "0.1"),
        ),
        count=2,
        restart_budget=40,
        backoff_base=0.02,
        backoff_cap=0.1,
        poll_interval=0.05,
        on_event=events.append,
    )
    report = supervisor.run()
    monkeypatch.delenv(FAILPOINTS_ENV)

    assert report.drained, (report.payload(), events)
    # The chaos actually bit: children crashed and were restarted.
    assert report.restarts >= 2, events

    counts = chaos_queue.counts()
    assert counts.drained, counts
    assert counts.done == 4

    # Invariant audit over the post-soak queue and store: nothing to
    # repair.  (Fresh crash litter in temps is age-gated by design.)
    chaos_store = ResultStore(tmp_path / "chaos-store")
    fsck = fsck_queue(chaos_queue, store=chaos_store)
    assert fsck.clean, [v.payload() for v in fsck.violations]

    # Byte-identical stored payloads: same cache keys, same bytes.
    assert store_bytes(chaos_store.root) == store_bytes(
        control_store.root
    )

    # And the rendered sweep report matches the uninjected run.
    assert report_json(chaos_queue, chaos_store) == report_json(
        control_queue, control_store
    )


def test_poison_environment_parks_a_real_fleet(tmp_path, monkeypatch):
    # Crash on the FIRST loop iteration: every child dies before doing
    # any work, restarts inherit the same poison, and the supervisor
    # must park within budget instead of fork-bombing.
    monkeypatch.setenv("PYTHONPATH", str(SRC))
    queue = WorkQueue.init(tmp_path / "q", spec())
    monkeypatch.setenv(FAILPOINTS_ENV, "worker.loop:crash:1")
    supervisor = FleetSupervisor(
        spawn_cli_worker(
            tmp_path / "q",
            tmp_path / "store",
            ("--ttl", str(TTL), "--poll", "0.1"),
        ),
        count=2,
        restart_budget=2,
        backoff_base=0.02,
        backoff_cap=0.1,
        poll_interval=0.05,
    )
    report = supervisor.run()
    monkeypatch.delenv(FAILPOINTS_ENV)

    assert report.parked
    assert not report.drained
    assert report.restarts == 2
    # No work was lost — the jobs are all still there to drain once
    # the operator fixes the environment.
    recovered = fsck_queue(queue, repair=True, temp_age=1e19)
    assert not recovered.unrepaired
    assert queue.counts().pending == 4
