"""Tests for the bounded interaction memories."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.memory import InteractionMemory, RowRingLog


class TestInteractionMemory:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            InteractionMemory(0)
        with pytest.raises(ValueError):
            InteractionMemory(-3)

    def test_empty_memory_reports_default(self):
        memory = InteractionMemory(4)
        assert len(memory) == 0
        assert not memory
        assert memory.mean() == 0.0
        assert memory.mean(default=0.5) == 0.5

    def test_mean_of_partial_window(self):
        memory = InteractionMemory(10)
        memory.extend([1.0, 0.0, 0.5])
        assert memory.mean() == pytest.approx(0.5)
        assert len(memory) == 3

    def test_eviction_is_fifo(self):
        memory = InteractionMemory(2)
        memory.extend([1.0, 0.0, -1.0])  # evicts the 1.0
        assert memory.mean() == pytest.approx(-0.5)
        assert list(memory.values()) == [0.0, -1.0]

    def test_values_preserve_chronological_order_after_wrap(self):
        memory = InteractionMemory(3)
        memory.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert list(memory.values()) == [3.0, 4.0, 5.0]

    def test_clear_forgets_everything(self):
        memory = InteractionMemory(3)
        memory.extend([1.0, 2.0])
        memory.clear()
        assert len(memory) == 0
        assert memory.mean(default=0.25) == 0.25

    def test_iteration_matches_values(self):
        memory = InteractionMemory(4)
        memory.extend([0.1, 0.2, 0.3])
        assert list(memory) == pytest.approx([0.1, 0.2, 0.3])

    @given(
        capacity=st.integers(min_value=1, max_value=20),
        values=st.lists(
            st.floats(min_value=-1, max_value=1, allow_nan=False),
            min_size=0,
            max_size=200,
        ),
    )
    def test_running_mean_matches_recomputed_mean(self, capacity, values):
        """Property: the O(1) mean equals the brute-force window mean."""
        memory = InteractionMemory(capacity)
        for value in values:
            memory.push(value)
        window = values[-capacity:]
        if window:
            assert memory.mean() == pytest.approx(
                sum(window) / len(window), abs=1e-9
            )
        else:
            assert memory.mean(default=0.5) == 0.5

    def test_resync_cancels_drift_over_many_pushes(self):
        memory = InteractionMemory(7)
        rng = np.random.default_rng(0)
        values = rng.uniform(-1, 1, 10_000)
        for value in values:
            memory.push(value)
        assert memory.mean() == pytest.approx(values[-7:].mean(), abs=1e-9)


class TestRowRingLog:
    def _log(self, rows=3, capacity=4):
        return RowRingLog(rows=rows, capacity=capacity, channels=("a", "b"))

    def test_validates_constructor_arguments(self):
        with pytest.raises(ValueError):
            RowRingLog(rows=0, capacity=4, channels=("a",))
        with pytest.raises(ValueError):
            RowRingLog(rows=2, capacity=0, channels=("a",))
        with pytest.raises(ValueError):
            RowRingLog(rows=2, capacity=4, channels=())
        with pytest.raises(ValueError):
            RowRingLog(rows=2, capacity=4, channels=("a", "a"))

    def test_push_validates_alignment_and_channels(self):
        log = self._log()
        rows = np.array([0, 1])
        with pytest.raises(ValueError):
            log.push(rows, {"a": np.zeros(2)}, performed=np.zeros(2, bool))
        with pytest.raises(ValueError):
            log.push(
                rows,
                {"a": np.zeros(3), "b": np.zeros(2)},
                performed=np.zeros(2, bool),
            )
        with pytest.raises(ValueError):
            log.push(
                rows,
                {"a": np.zeros(2), "b": np.zeros(2)},
                performed=np.zeros(3, bool),
            )

    def test_empty_rows_report_default(self):
        log = self._log()
        assert log.mean_all("a", default=-1.0).tolist() == [-1.0] * 3
        assert log.mean_performed("a", default=0.5).tolist() == [0.5] * 3

    def test_push_all_rows_and_means(self):
        log = self._log()
        log.push_all_rows(
            {"a": np.array([1.0, 2.0, 3.0]), "b": np.zeros(3)},
            performed=np.array([True, False, True]),
        )
        assert log.mean_all("a").tolist() == [1.0, 2.0, 3.0]
        assert log.mean_performed("a", default=0.0).tolist() == [1.0, 0.0, 3.0]
        assert log.counts().tolist() == [1, 1, 1]
        assert log.performed_counts().tolist() == [1, 0, 1]

    def test_eviction_updates_performed_subset(self):
        """A performed entry ageing out must shrink the performed mean."""
        log = RowRingLog(rows=1, capacity=2, channels=("a",))
        row = np.array([0])
        log.push(row, {"a": np.array([1.0])}, performed=np.array([True]))
        log.push(row, {"a": np.array([0.0])}, performed=np.array([False]))
        assert log.mean_performed("a")[0] == pytest.approx(1.0)
        # This push evicts the performed 1.0: nothing performed remains.
        log.push(row, {"a": np.array([0.5])}, performed=np.array([False]))
        assert log.performed_counts()[0] == 0
        assert log.mean_performed("a", default=-1.0)[0] == -1.0

    def test_subset_rows_advance_independently(self):
        log = self._log(rows=3, capacity=2)
        log.push(
            np.array([0]),
            {"a": np.array([1.0]), "b": np.array([0.0])},
            performed=np.array([True]),
        )
        log.push(
            np.array([0, 2]),
            {"a": np.array([3.0, 5.0]), "b": np.zeros(2)},
            performed=np.array([True, True]),
        )
        assert log.counts().tolist() == [2, 0, 1]
        assert log.mean_all("a", default=0.0).tolist() == [2.0, 0.0, 5.0]

    def test_row_values_returns_chronological_window(self):
        log = RowRingLog(rows=1, capacity=3, channels=("a",))
        for value in [1.0, 2.0, 3.0, 4.0]:
            log.push(
                np.array([0]),
                {"a": np.array([value])},
                performed=np.array([True]),
            )
        assert log.row_values(0, "a").tolist() == [2.0, 3.0, 4.0]

    @given(
        capacity=st.integers(min_value=1, max_value=6),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.booleans(),
            ),
            min_size=0,
            max_size=60,
        ),
    )
    @settings(max_examples=60)
    def test_single_row_matches_bruteforce(self, capacity, steps):
        """Property: running sums equal brute-force window recomputation."""
        log = RowRingLog(rows=1, capacity=capacity, channels=("v",))
        row = np.array([0])
        for value, performed in steps:
            log.push(
                row,
                {"v": np.array([value])},
                performed=np.array([performed]),
            )
        window = steps[-capacity:]
        all_values = [v for v, _ in window]
        performed_values = [v for v, flag in window if flag]
        if all_values:
            assert log.mean_all("v")[0] == pytest.approx(
                np.mean(all_values), abs=1e-9
            )
        if performed_values:
            assert log.mean_performed("v")[0] == pytest.approx(
                np.mean(performed_values), abs=1e-9
            )
        else:
            assert log.performed_counts()[0] == 0

    def test_resync_keeps_sums_consistent_after_many_pushes(self):
        log = RowRingLog(rows=2, capacity=5, channels=("v",))
        rng = np.random.default_rng(1)
        history = {0: [], 1: []}
        for _ in range(5000):
            rows = np.array([0, 1])
            values = rng.uniform(-1, 1, 2)
            performed = rng.random(2) < 0.5
            log.push(rows, {"v": values}, performed=performed)
            for i in (0, 1):
                history[i].append((values[i], performed[i]))
        for i in (0, 1):
            window = history[i][-5:]
            assert log.mean_all("v")[i] == pytest.approx(
                np.mean([v for v, _ in window]), abs=1e-9
            )


class TestInteractionMemoryBulkExtend:
    """The vectorised extend must be indistinguishable from scalar pushes."""

    @given(
        capacity=st.integers(min_value=1, max_value=12),
        chunks=st.lists(
            st.lists(
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                min_size=0,
                max_size=40,
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=80)
    def test_extend_matches_scalar_pushes(self, capacity, chunks):
        bulk = InteractionMemory(capacity)
        scalar = InteractionMemory(capacity)
        for chunk in chunks:
            bulk.extend(chunk)
            for value in chunk:
                scalar.push(value)
            # The remembered window is bit-identical; the running mean
            # may differ by float-drift ulps (extend resyncs from the
            # raw buffer, which is *more* accurate than the incremental
            # sum), so it is compared within the documented tolerance.
            assert np.array_equal(bulk.values(), scalar.values())
            assert bulk.mean(default=0.5) == pytest.approx(
                scalar.mean(default=0.5), abs=1e-9
            )
            assert len(bulk) == len(scalar)

    def test_extend_then_push_continues_the_same_ring(self):
        bulk = InteractionMemory(3)
        scalar = InteractionMemory(3)
        bulk.extend([1.0, 2.0, 3.0, 4.0])
        for value in [1.0, 2.0, 3.0, 4.0]:
            scalar.push(value)
        bulk.push(5.0)
        scalar.push(5.0)
        assert np.array_equal(bulk.values(), scalar.values())

    def test_extend_longer_than_capacity_keeps_only_tail(self):
        memory = InteractionMemory(3)
        memory.extend(range(100))
        assert memory.values().tolist() == [97.0, 98.0, 99.0]


class TestRowRingLogBulkPaths:
    """Uniform-slot, scattered, and scalar pushes against brute force."""

    @given(
        capacity=st.integers(min_value=1, max_value=5),
        steps=st.lists(
            st.tuples(
                # Row subset as a bitmask over 6 rows (0 → no push).
                st.integers(min_value=1, max_value=63),
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.booleans(),
            ),
            min_size=0,
            max_size=40,
        ),
    )
    @settings(max_examples=80)
    def test_subset_pushes_match_bruteforce_windows(self, capacity, steps):
        rows_total = 6
        log = RowRingLog(rows=rows_total, capacity=capacity, channels=("v",))
        windows = [[] for _ in range(rows_total)]
        for bitmask, value, performed in steps:
            rows = np.flatnonzero(
                [(bitmask >> row) & 1 for row in range(rows_total)]
            )
            values = np.full(rows.size, value)
            performed_arr = np.full(rows.size, performed, dtype=bool)
            dirty = log.push(rows, {"v": values}, performed=performed_arr)
            expected_dirty = []
            for row in rows:
                window = windows[row]
                evicted_performed = (
                    len(window) == capacity and window[0][1]
                )
                if performed or evicted_performed:
                    expected_dirty.append(row)
                window.append((value, performed))
                del window[:-capacity]
            assert dirty.tolist() == expected_dirty
        for row in range(rows_total):
            window = windows[row]
            all_values = [value for value, _ in window]
            performed_values = [
                value for value, performed in window if performed
            ]
            assert log.counts()[row] == len(all_values)
            assert log.performed_counts()[row] == len(performed_values)
            if all_values:
                assert log.mean_all("v")[row] == pytest.approx(
                    np.mean(all_values), abs=1e-9
                )
                assert np.array_equal(
                    log.row_values(row, "v"), np.array(all_values)
                )
            if performed_values:
                assert log.mean_performed("v")[row] == pytest.approx(
                    np.mean(performed_values), abs=1e-9
                )

    @given(
        steps=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_push_scalar_equals_single_row_push(self, steps):
        """push_scalar is bit-identical to push() with one row."""
        via_push = RowRingLog(rows=4, capacity=3, channels=("a", "b"))
        via_scalar = RowRingLog(rows=4, capacity=3, channels=("a", "b"))
        for row, a, b, performed in steps:
            returned = via_push.push(
                np.array([row]),
                {"a": np.array([a]), "b": np.array([b])},
                performed=np.array([performed]),
            )
            dirty = via_scalar.push_scalar(row, (a, b), performed)
            assert dirty == bool(returned.size)
        for channel in ("a", "b"):
            assert np.array_equal(
                via_push.mean_all(channel), via_scalar.mean_all(channel)
            )
            assert np.array_equal(
                via_push.mean_performed(channel),
                via_scalar.mean_performed(channel),
            )
            for row in range(4):
                assert np.array_equal(
                    via_push.row_values(row, channel),
                    via_scalar.row_values(row, channel),
                )

    def test_push_scalar_validates_channel_count(self):
        log = RowRingLog(rows=2, capacity=2, channels=("a", "b"))
        with pytest.raises(ValueError):
            log.push_scalar(0, (1.0,), True)

    def test_full_population_lockstep_then_subset(self):
        """Departure-style shrinkage: all-rows pushes then a subset."""
        log = RowRingLog(rows=5, capacity=2, channels=("v",))
        for value in (0.1, 0.2, 0.3):
            log.push_all_rows(
                {"v": np.full(5, value)}, performed=np.zeros(5, dtype=bool)
            )
        survivors = np.array([0, 1, 3])
        log.push(
            survivors,
            {"v": np.full(3, 0.9)},
            performed=np.array([True, False, False]),
        )
        assert log.mean_all("v")[0] == pytest.approx((0.3 + 0.9) / 2)
        assert log.mean_all("v")[2] == pytest.approx((0.2 + 0.3) / 2)
        assert log.mean_performed("v", default=-1.0)[0] == pytest.approx(0.9)
        assert log.mean_performed("v", default=-1.0)[2] == -1.0
