"""Tests for the bounded interaction memories."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.memory import InteractionMemory, RowRingLog


class TestInteractionMemory:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            InteractionMemory(0)
        with pytest.raises(ValueError):
            InteractionMemory(-3)

    def test_empty_memory_reports_default(self):
        memory = InteractionMemory(4)
        assert len(memory) == 0
        assert not memory
        assert memory.mean() == 0.0
        assert memory.mean(default=0.5) == 0.5

    def test_mean_of_partial_window(self):
        memory = InteractionMemory(10)
        memory.extend([1.0, 0.0, 0.5])
        assert memory.mean() == pytest.approx(0.5)
        assert len(memory) == 3

    def test_eviction_is_fifo(self):
        memory = InteractionMemory(2)
        memory.extend([1.0, 0.0, -1.0])  # evicts the 1.0
        assert memory.mean() == pytest.approx(-0.5)
        assert list(memory.values()) == [0.0, -1.0]

    def test_values_preserve_chronological_order_after_wrap(self):
        memory = InteractionMemory(3)
        memory.extend([1.0, 2.0, 3.0, 4.0, 5.0])
        assert list(memory.values()) == [3.0, 4.0, 5.0]

    def test_clear_forgets_everything(self):
        memory = InteractionMemory(3)
        memory.extend([1.0, 2.0])
        memory.clear()
        assert len(memory) == 0
        assert memory.mean(default=0.25) == 0.25

    def test_iteration_matches_values(self):
        memory = InteractionMemory(4)
        memory.extend([0.1, 0.2, 0.3])
        assert list(memory) == pytest.approx([0.1, 0.2, 0.3])

    @given(
        capacity=st.integers(min_value=1, max_value=20),
        values=st.lists(
            st.floats(min_value=-1, max_value=1, allow_nan=False),
            min_size=0,
            max_size=200,
        ),
    )
    def test_running_mean_matches_recomputed_mean(self, capacity, values):
        """Property: the O(1) mean equals the brute-force window mean."""
        memory = InteractionMemory(capacity)
        for value in values:
            memory.push(value)
        window = values[-capacity:]
        if window:
            assert memory.mean() == pytest.approx(
                sum(window) / len(window), abs=1e-9
            )
        else:
            assert memory.mean(default=0.5) == 0.5

    def test_resync_cancels_drift_over_many_pushes(self):
        memory = InteractionMemory(7)
        rng = np.random.default_rng(0)
        values = rng.uniform(-1, 1, 10_000)
        for value in values:
            memory.push(value)
        assert memory.mean() == pytest.approx(values[-7:].mean(), abs=1e-9)


class TestRowRingLog:
    def _log(self, rows=3, capacity=4):
        return RowRingLog(rows=rows, capacity=capacity, channels=("a", "b"))

    def test_validates_constructor_arguments(self):
        with pytest.raises(ValueError):
            RowRingLog(rows=0, capacity=4, channels=("a",))
        with pytest.raises(ValueError):
            RowRingLog(rows=2, capacity=0, channels=("a",))
        with pytest.raises(ValueError):
            RowRingLog(rows=2, capacity=4, channels=())
        with pytest.raises(ValueError):
            RowRingLog(rows=2, capacity=4, channels=("a", "a"))

    def test_push_validates_alignment_and_channels(self):
        log = self._log()
        rows = np.array([0, 1])
        with pytest.raises(ValueError):
            log.push(rows, {"a": np.zeros(2)}, performed=np.zeros(2, bool))
        with pytest.raises(ValueError):
            log.push(
                rows,
                {"a": np.zeros(3), "b": np.zeros(2)},
                performed=np.zeros(2, bool),
            )
        with pytest.raises(ValueError):
            log.push(
                rows,
                {"a": np.zeros(2), "b": np.zeros(2)},
                performed=np.zeros(3, bool),
            )

    def test_empty_rows_report_default(self):
        log = self._log()
        assert log.mean_all("a", default=-1.0).tolist() == [-1.0] * 3
        assert log.mean_performed("a", default=0.5).tolist() == [0.5] * 3

    def test_push_all_rows_and_means(self):
        log = self._log()
        log.push_all_rows(
            {"a": np.array([1.0, 2.0, 3.0]), "b": np.zeros(3)},
            performed=np.array([True, False, True]),
        )
        assert log.mean_all("a").tolist() == [1.0, 2.0, 3.0]
        assert log.mean_performed("a", default=0.0).tolist() == [1.0, 0.0, 3.0]
        assert log.counts().tolist() == [1, 1, 1]
        assert log.performed_counts().tolist() == [1, 0, 1]

    def test_eviction_updates_performed_subset(self):
        """A performed entry ageing out must shrink the performed mean."""
        log = RowRingLog(rows=1, capacity=2, channels=("a",))
        row = np.array([0])
        log.push(row, {"a": np.array([1.0])}, performed=np.array([True]))
        log.push(row, {"a": np.array([0.0])}, performed=np.array([False]))
        assert log.mean_performed("a")[0] == pytest.approx(1.0)
        # This push evicts the performed 1.0: nothing performed remains.
        log.push(row, {"a": np.array([0.5])}, performed=np.array([False]))
        assert log.performed_counts()[0] == 0
        assert log.mean_performed("a", default=-1.0)[0] == -1.0

    def test_subset_rows_advance_independently(self):
        log = self._log(rows=3, capacity=2)
        log.push(
            np.array([0]),
            {"a": np.array([1.0]), "b": np.array([0.0])},
            performed=np.array([True]),
        )
        log.push(
            np.array([0, 2]),
            {"a": np.array([3.0, 5.0]), "b": np.zeros(2)},
            performed=np.array([True, True]),
        )
        assert log.counts().tolist() == [2, 0, 1]
        assert log.mean_all("a", default=0.0).tolist() == [2.0, 0.0, 5.0]

    def test_row_values_returns_chronological_window(self):
        log = RowRingLog(rows=1, capacity=3, channels=("a",))
        for value in [1.0, 2.0, 3.0, 4.0]:
            log.push(
                np.array([0]),
                {"a": np.array([value])},
                performed=np.array([True]),
            )
        assert log.row_values(0, "a").tolist() == [2.0, 3.0, 4.0]

    @given(
        capacity=st.integers(min_value=1, max_value=6),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.booleans(),
            ),
            min_size=0,
            max_size=60,
        ),
    )
    @settings(max_examples=60)
    def test_single_row_matches_bruteforce(self, capacity, steps):
        """Property: running sums equal brute-force window recomputation."""
        log = RowRingLog(rows=1, capacity=capacity, channels=("v",))
        row = np.array([0])
        for value, performed in steps:
            log.push(
                row,
                {"v": np.array([value])},
                performed=np.array([performed]),
            )
        window = steps[-capacity:]
        all_values = [v for v, _ in window]
        performed_values = [v for v, flag in window if flag]
        if all_values:
            assert log.mean_all("v")[0] == pytest.approx(
                np.mean(all_values), abs=1e-9
            )
        if performed_values:
            assert log.mean_performed("v")[0] == pytest.approx(
                np.mean(performed_values), abs=1e-9
            )
        else:
            assert log.performed_counts()[0] == 0

    def test_resync_keeps_sums_consistent_after_many_pushes(self):
        log = RowRingLog(rows=2, capacity=5, channels=("v",))
        rng = np.random.default_rng(1)
        history = {0: [], 1: []}
        for _ in range(5000):
            rows = np.array([0, 1])
            values = rng.uniform(-1, 1, 2)
            performed = rng.random(2) < 0.5
            log.push(rows, {"v": values}, performed=performed)
            for i in (0, 1):
                history[i].append((values[i], performed[i]))
        for i in (0, 1):
            window = history[i][-5:]
            assert log.mean_all("v")[i] == pytest.approx(
                np.mean([v for v, _ in window]), abs=1e-9
            )
