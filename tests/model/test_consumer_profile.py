"""Tests for the consumer characterisation (Section 3.1)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.consumer_profile import (
    ConsumerProfile,
    query_adequation,
    query_satisfaction,
)

intention_lists = st.lists(
    st.floats(min_value=-1, max_value=1, allow_nan=False),
    min_size=1,
    max_size=20,
)


class TestQueryAdequation:
    def test_rescales_mean_intention(self):
        # Intentions (1, 0, -1) average to 0 → adequation 0.5.
        assert query_adequation([1.0, 0.0, -1.0]) == pytest.approx(0.5)

    def test_all_negative_intentions_give_zero(self):
        assert query_adequation([-1.0, -1.0]) == 0.0

    def test_rejects_empty_candidate_set(self):
        with pytest.raises(ValueError):
            query_adequation([])

    @given(intention_lists)
    def test_bounds(self, intentions):
        assert 0.0 <= query_adequation(intentions) <= 1.0


class TestQuerySatisfaction:
    def test_full_satisfaction_from_single_perfect_provider(self):
        """The paper's eWine example: one provider with intention 1 and
        q.n = 1 gives satisfaction 1 even without the 2nd result."""
        assert query_satisfaction([1.0], n_desired=1) == pytest.approx(1.0)

    def test_missing_results_dilute_satisfaction(self):
        # Same single intention-1 provider but two results desired.
        assert query_satisfaction([1.0], n_desired=2) == pytest.approx(0.75)

    def test_empty_selection_is_neutral(self):
        assert query_satisfaction([], n_desired=1) == pytest.approx(0.5)

    def test_rejects_more_selected_than_desired(self):
        with pytest.raises(ValueError):
            query_satisfaction([0.5, 0.5], n_desired=1)

    def test_rejects_non_positive_n(self):
        with pytest.raises(ValueError):
            query_satisfaction([0.5], n_desired=0)

    @given(
        intention_lists,
        st.integers(min_value=1, max_value=25),
    )
    def test_bounds(self, intentions, n_desired):
        selected = intentions[:n_desired]
        value = query_satisfaction(selected, n_desired=n_desired)
        assert 0.0 <= value <= 1.0


class TestConsumerProfile:
    def test_reports_initial_satisfaction_when_empty(self):
        profile = ConsumerProfile(k=5, initial_satisfaction=0.5)
        assert profile.satisfaction() == 0.5
        assert profile.adequation() == 0.5
        assert profile.allocation_satisfaction() == pytest.approx(1.0)

    def test_rejects_out_of_range_initial(self):
        with pytest.raises(ValueError):
            ConsumerProfile(k=5, initial_satisfaction=1.5)

    def test_window_averages_definitions_1_and_2(self):
        profile = ConsumerProfile(k=10)
        profile.record_query([1.0, -1.0], [1.0], n_desired=1)  # δa=.5, δs=1
        profile.record_query([0.0, 0.0], [0.0], n_desired=1)  # δa=.5, δs=.5
        assert profile.adequation() == pytest.approx(0.5)
        assert profile.satisfaction() == pytest.approx(0.75)
        assert profile.allocation_satisfaction() == pytest.approx(1.5)

    def test_sliding_window_evicts_old_queries(self):
        profile = ConsumerProfile(k=1)
        profile.record_query([1.0], [1.0], n_desired=1)
        profile.record_query([-1.0], [-1.0], n_desired=1)
        assert profile.satisfaction() == pytest.approx(0.0)
        assert profile.adequation() == pytest.approx(0.0)

    def test_is_punished_matches_departure_rule(self):
        profile = ConsumerProfile(k=4)
        # Consumer keeps being given its worst provider out of two.
        profile.record_query([1.0, -1.0], [-1.0], n_desired=1)
        assert profile.satisfaction() < profile.adequation()
        assert profile.is_punished()

    def test_record_returns_per_query_values(self):
        profile = ConsumerProfile(k=4)
        adequation, satisfaction = profile.record_query(
            [1.0, 0.0], [1.0], n_desired=1
        )
        assert adequation == pytest.approx(0.75)
        assert satisfaction == pytest.approx(1.0)

    def test_zero_adequation_conventions(self):
        profile = ConsumerProfile(k=2)
        profile.record_query([-1.0], [-1.0], n_desired=1)
        # δa = 0 and δs = 0 → neutral.
        assert profile.allocation_satisfaction() == 1.0
        profile_inf = ConsumerProfile(k=2)
        # One selected of two desired at intention -1: δs = 0.25, δa = 0.
        profile_inf.record_query([-1.0], [-1.0], n_desired=2)
        assert profile_inf.allocation_satisfaction() == float("inf")
