"""Tests for strategic (misreporting) providers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model.strategic import StrategicReporting, StrategicSpec
from repro.simulation.engine import run_simulation

from tests.experiments.test_golden import (
    SERIES_SHA256,
    _series_fingerprint,
    captive_config,
)


class TestSpecValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            StrategicSpec(fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            StrategicSpec(fraction=1.1)

    def test_mode_checked(self):
        with pytest.raises(ValueError, match="mode"):
            StrategicSpec(mode="lie")

    def test_gain_bounds(self):
        with pytest.raises(ValueError, match="gain"):
            StrategicSpec(gain=0.0)
        with pytest.raises(ValueError, match="gain"):
            StrategicSpec(gain=1.5)


class TestMask:
    def test_size_and_determinism(self):
        spec = StrategicSpec(fraction=0.25)
        first = StrategicReporting(spec, 16, np.random.default_rng(3))
        second = StrategicReporting(spec, 16, np.random.default_rng(3))
        assert first.strategic_mask.sum() == 4
        np.testing.assert_array_equal(
            first.strategic_mask, second.strategic_mask
        )

    def test_at_least_one_strategic(self):
        spec = StrategicSpec(fraction=0.01)
        reporting = StrategicReporting(spec, 8, np.random.default_rng(0))
        assert reporting.strategic_mask.sum() == 1


class TestReport:
    def _reporting(self, mode, gain=0.5, n=4):
        spec = StrategicSpec(fraction=0.5, mode=mode, gain=gain)
        reporting = StrategicReporting(spec, n, np.random.default_rng(0))
        # Pin the mask so assertions are readable.
        reporting.strategic_mask[:] = [True, False, True, False]
        return reporting

    def test_exaggerate_moves_toward_plus_one(self):
        reporting = self._reporting("exaggerate", gain=0.5)
        providers = np.arange(4)
        truthful = np.array([-1.0, -0.5, 0.0, 0.5])
        reported = reporting.report(providers, truthful)
        np.testing.assert_allclose(reported, [0.0, -0.5, 0.5, 0.5])
        # The truthful input is never mutated.
        np.testing.assert_array_equal(truthful, [-1.0, -0.5, 0.0, 0.5])

    def test_understate_moves_toward_minus_one(self):
        reporting = self._reporting("understate", gain=0.5)
        providers = np.arange(4)
        truthful = np.array([-1.0, -0.5, 0.0, 0.5])
        reported = reporting.report(providers, truthful)
        np.testing.assert_allclose(reported, [-1.0, -0.5, -0.5, 0.5])

    def test_full_gain_reports_the_extreme(self):
        reporting = self._reporting("exaggerate", gain=1.0)
        providers = np.arange(4)
        truthful = np.array([-0.9, -0.9, 0.3, 0.3])
        reported = reporting.report(providers, truthful)
        np.testing.assert_allclose(reported, [1.0, -0.9, 1.0, 0.3])

    def test_no_strategic_candidates_passes_through(self):
        reporting = self._reporting("exaggerate")
        providers = np.array([1, 3])  # both non-strategic
        truthful = np.array([0.2, -0.7])
        reported = reporting.report(providers, truthful)
        assert reported is truthful  # no copy when nothing changes

    def test_report_consumes_no_rng(self):
        rng = np.random.default_rng(11)
        reporting = StrategicReporting(StrategicSpec(), 16, rng)
        before = rng.bit_generator.state
        reporting.report(np.arange(16), np.zeros(16))
        assert rng.bit_generator.state == before

    def test_identity_cache_tracks_candidate_array(self):
        reporting = self._reporting("exaggerate")
        first = np.arange(4)
        reporting.report(first, np.zeros(4))
        assert reporting._cached_providers is first
        second = np.array([1, 3])
        reporting.report(second, np.zeros(2))
        assert reporting._cached_providers is second
        np.testing.assert_array_equal(
            reporting._cached_member, [False, False]
        )


class TestEngineIntegration:
    def test_none_spec_is_bit_identical_to_baseline(self):
        result = run_simulation(captive_config(), "sqlb", seed=5)
        assert (
            _series_fingerprint(result)
            == SERIES_SHA256[("captive", "sqlb")]
        )

    def test_strategic_changes_numerics_but_not_grid(self):
        baseline = run_simulation(captive_config(), "sqlb", seed=5)
        config = captive_config().with_strategic(StrategicSpec())
        distorted = run_simulation(config, "sqlb", seed=5)
        np.testing.assert_array_equal(
            baseline.times(), distorted.times()
        )
        assert _series_fingerprint(baseline) != _series_fingerprint(
            distorted
        )
