"""Tests for the Section 4 system metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import metrics

unit_values = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=50,
)


class TestMean:
    def test_matches_paper_example(self):
        # Section 4's sensitivity example, mediator m.
        assert metrics.mean([0.2, 1.0, 0.6]) == pytest.approx(0.6)

    def test_rejects_empty_set(self):
        with pytest.raises(ValueError):
            metrics.mean([])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            metrics.mean([0.5, float("nan")])
        with pytest.raises(ValueError):
            metrics.mean([0.5, float("inf")])

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            metrics.mean(np.zeros((2, 2)))


class TestFairness:
    def test_matches_paper_sensitivity_example(self):
        """Section 4 computes f = 0.77 and 0.97 for mediators m and m'."""
        m = metrics.fairness([0.2, 1.0, 0.6])
        m_prime = metrics.fairness([1.0, 0.7, 0.9])
        assert m == pytest.approx(0.77, abs=0.005)
        # The paper reports 0.97; the exact value is 0.9797.
        assert m_prime == pytest.approx(0.98, abs=0.005)

    def test_equal_values_are_perfectly_fair(self):
        assert metrics.fairness([0.4, 0.4, 0.4]) == pytest.approx(1.0)

    def test_all_zero_is_defined_as_fair(self):
        assert metrics.fairness([0.0, 0.0]) == 1.0

    def test_single_nonzero_among_many_is_least_fair(self):
        # Jain's index lower bound is 1/n, hit by a single winner.
        n = 10
        values = [0.0] * (n - 1) + [1.0]
        assert metrics.fairness(values) == pytest.approx(1.0 / n)

    @given(unit_values)
    def test_bounds(self, values):
        value = metrics.fairness(values)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(
        unit_values,
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    def test_scale_invariance(self, values, scale):
        """Jain's index is invariant to a positive rescaling of g."""
        scaled = [value * scale for value in values]
        assert metrics.fairness(scaled) == pytest.approx(
            metrics.fairness(values), abs=1e-9
        )


class TestMinMaxRatio:
    def test_balanced_set_is_one(self):
        assert metrics.min_max_ratio([0.5, 0.5]) == pytest.approx(1.0)

    def test_detects_punished_entity(self):
        balanced = metrics.min_max_ratio([0.8, 0.9, 1.0])
        punished = metrics.min_max_ratio([0.0, 0.9, 1.0])
        assert punished < balanced

    def test_c0_keeps_ratio_defined_at_zero_max(self):
        assert metrics.min_max_ratio([0.0, 0.0], c0=0.1) == pytest.approx(1.0)

    def test_rejects_non_positive_c0(self):
        with pytest.raises(ValueError):
            metrics.min_max_ratio([0.5], c0=0.0)

    @given(unit_values, st.floats(min_value=0.01, max_value=5.0))
    def test_bounds_for_non_negative_values(self, values, c0):
        value = metrics.min_max_ratio(values, c0=c0)
        assert 0.0 < value <= 1.0 + 1e-12


class TestEntityForms:
    def test_mean_of_callable(self):
        entities = [{"g": 0.2}, {"g": 0.4}]
        assert metrics.mean_of(lambda e: e["g"], entities) == pytest.approx(0.3)

    def test_fairness_of_callable(self):
        entities = [1.0, 1.0, 1.0]
        assert metrics.fairness_of(lambda e: e, entities) == pytest.approx(1.0)

    def test_min_max_ratio_of_callable(self):
        entities = [0.2, 0.8]
        expected = metrics.min_max_ratio([0.2, 0.8])
        assert metrics.min_max_ratio_of(lambda e: e, entities) == expected


class TestSummarize:
    def test_contains_all_three_metrics(self):
        summary = metrics.summarize([0.2, 1.0, 0.6])
        assert set(summary) == {"mean", "fairness", "min_max_ratio"}
        assert summary["mean"] == pytest.approx(0.6)
