"""Tests for the provider characterisation (Section 3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.provider_profile import ProviderProfile


class TestProviderProfileBasics:
    def test_validates_constructor(self):
        with pytest.raises(ValueError):
            ProviderProfile(k=0)
        with pytest.raises(ValueError):
            ProviderProfile(k=5, initial_satisfaction=-0.1)

    def test_definition_4_and_5_zero_when_empty(self):
        profile = ProviderProfile(k=5)
        assert profile.adequation() == 0.0
        assert profile.satisfaction() == 0.0

    def test_or_initial_variants_report_table2_value(self):
        profile = ProviderProfile(k=5, initial_satisfaction=0.5)
        assert profile.satisfaction_or_initial() == 0.5
        assert profile.adequation_or_initial() == 0.5
        profile.record_proposal(1.0, 1.0, performed=True)
        assert profile.satisfaction_or_initial() == pytest.approx(1.0)

    def test_adequation_over_all_proposed(self):
        profile = ProviderProfile(k=10)
        profile.record_proposal(1.0, 1.0, performed=False)
        profile.record_proposal(-1.0, -1.0, performed=False)
        assert profile.adequation() == pytest.approx(0.5)
        # Nothing performed yet.
        assert profile.satisfaction() == 0.0

    def test_satisfaction_over_performed_subset_only(self):
        profile = ProviderProfile(k=10)
        profile.record_proposal(-1.0, -1.0, performed=False)
        profile.record_proposal(1.0, 1.0, performed=True)
        assert profile.satisfaction() == pytest.approx(1.0)
        assert profile.adequation() == pytest.approx(0.5)
        assert profile.allocation_satisfaction() == pytest.approx(2.0)

    def test_intention_and_preference_bases_are_independent(self):
        profile = ProviderProfile(k=10)
        profile.record_proposal(intention=-1.0, preference=1.0, performed=True)
        assert profile.satisfaction("intention") == pytest.approx(0.0)
        assert profile.satisfaction("preference") == pytest.approx(1.0)

    def test_rejects_unknown_basis(self):
        profile = ProviderProfile(k=5)
        with pytest.raises(ValueError):
            profile.satisfaction("feelings")
        with pytest.raises(ValueError):
            profile.adequation("feelings")


class TestWindowCoupling:
    """Definition 5's SQ ⊆ PQ coupling: performed entries age out with
    the *proposed* window, not independently."""

    def test_performed_entry_ages_out_of_proposed_window(self):
        profile = ProviderProfile(k=2)
        profile.record_proposal(1.0, 1.0, performed=True)
        profile.record_proposal(0.0, 0.0, performed=False)
        assert profile.satisfaction() == pytest.approx(1.0)
        profile.record_proposal(0.0, 0.0, performed=False)
        # The performed 1.0 left the window: Definition 5 gives 0.
        assert profile.queries_performed == 0
        assert profile.satisfaction() == 0.0

    def test_starved_provider_becomes_maximally_dissatisfied(self):
        """A provider proposed many queries but allocated none has
        δs = 0 < δa: the punishment signal driving departures."""
        profile = ProviderProfile(k=20)
        for _ in range(20):
            profile.record_proposal(0.8, 0.8, performed=False)
        assert profile.adequation() == pytest.approx(0.9)
        assert profile.satisfaction() == 0.0
        assert profile.allocation_satisfaction() == 0.0


class TestAllocationSatisfaction:
    def test_neutral_when_performed_matches_proposed(self):
        profile = ProviderProfile(k=10)
        for value in (0.5, 0.5, 0.5):
            profile.record_proposal(value, value, performed=True)
        assert profile.allocation_satisfaction() == pytest.approx(1.0)

    def test_zero_adequation_with_zero_satisfaction_is_neutral(self):
        profile = ProviderProfile(k=4)
        profile.record_proposal(-1.0, -1.0, performed=True)
        assert profile.allocation_satisfaction() == 1.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60)
    def test_characteristics_stay_in_range(self, trace):
        profile = ProviderProfile(k=8)
        for value, performed in trace:
            profile.record_proposal(value, value, performed=performed)
        assert 0.0 <= profile.adequation() <= 1.0
        assert 0.0 <= profile.satisfaction() <= 1.0
        assert profile.allocation_satisfaction() >= 0.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1, max_value=1, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60)
    def test_matches_bruteforce_definitions(self, trace, k):
        """Property: the profile equals Definitions 4/5 recomputed."""
        profile = ProviderProfile(k=k)
        for value, performed in trace:
            profile.record_proposal(value, value, performed=performed)
        window = trace[-k:]
        proposed = [v for v, _ in window]
        performed_vals = [v for v, flag in window if flag]
        expected_adequation = (sum(proposed) / len(proposed) + 1) / 2
        assert profile.adequation() == pytest.approx(
            expected_adequation, abs=1e-9
        )
        if performed_vals:
            expected_satisfaction = (
                sum(performed_vals) / len(performed_vals) + 1
            ) / 2
            assert profile.satisfaction() == pytest.approx(
                expected_satisfaction, abs=1e-9
            )
        else:
            assert profile.satisfaction() == 0.0
