"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.executor import (
    CACHE_DIR_ENV,
    WORKERS_ENV,
    set_default_executor,
)
from repro.reliability import (
    DURABLE_WRITES_ENV,
    FAILPOINTS_ENV,
    FAILPOINTS_SEED_ENV,
    configure_durable_writes,
    configure_failpoints,
)
from repro.simulation.config import tiny_config


@pytest.fixture(scope="session", autouse=True)
def _isolated_default_executor():
    """Start the unit-test portion of a session from a fresh executor.

    In a mixed invocation (``pytest benchmarks/bench_x.py tests/``) the
    benchmark conftest installs a session-scoped executor backed by the
    persistent bench store; without this reset, harness-routed unit
    tests would silently read (and write) that store.
    """
    set_default_executor(None)
    yield
    set_default_executor(None)


@pytest.fixture(autouse=True)
def _hermetic_executor_env(monkeypatch):
    """Shield every test from the operator's executor environment.

    The default executor is built lazily from ``REPRO_WORKERS`` /
    ``REPRO_CACHE_DIR``; an exported cache dir would otherwise let
    harness-routed tests read stale persisted results (masking exactly
    the numeric drift the golden tests exist to catch), and a garbage
    worker count would crash unrelated tests.
    """
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)


@pytest.fixture(autouse=True)
def _hermetic_reliability_env(monkeypatch):
    """Shield every test from operator chaos/durability settings.

    An exported ``REPRO_FAILPOINTS`` would inject faults into every
    test in the suite; the cached registries are reset to the lazy
    unresolved state on both sides of each test.
    """
    monkeypatch.delenv(FAILPOINTS_ENV, raising=False)
    monkeypatch.delenv(FAILPOINTS_SEED_ENV, raising=False)
    monkeypatch.delenv(DURABLE_WRITES_ENV, raising=False)
    configure_failpoints(None)
    configure_durable_writes(None)
    yield
    configure_failpoints(None)
    configure_durable_writes(None)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def config():
    """The seconds-fast simulation environment."""
    return tiny_config()
