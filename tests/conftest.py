"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.config import tiny_config


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def config():
    """The seconds-fast simulation environment."""
    return tiny_config()
