"""Tests for the package's public surface."""

from __future__ import annotations

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet_runs():
    """The __init__ docstring example must actually work."""
    result = repro.run_simulation(
        repro.tiny_config(duration=40.0), "sqlb", seed=42
    )
    value = result.series("provider_intention_satisfaction_mean")[-1]
    assert 0.0 <= value <= 1.0


def test_paper_methods_buildable():
    config = repro.tiny_config()
    for name in repro.PAPER_METHODS:
        method = repro.build_method(name, config)
        assert isinstance(method, repro.AllocationMethod)
