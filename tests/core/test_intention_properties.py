"""Property-style tests for the intention formulas.

Random-input sweeps (fixed-seed, many draws) over Definitions 7 and 8:
clipping is idempotent and range-preserving, the vectorised forms agree
with the scalar references on random inputs, and intention vectors stay
inside the ranges the satisfaction model assumes after clipping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.intentions import (
    clip_intention,
    consumer_intention,
    consumer_intention_vector,
    provider_intention,
    provider_intention_vector,
)

N_TRIALS = 500


@pytest.fixture(scope="module")
def draws():
    rng = np.random.default_rng(987)
    return {
        "preferences": rng.uniform(-1.0, 1.0, N_TRIALS),
        "reputations": rng.uniform(-1.0, 1.0, N_TRIALS),
        "utilizations": rng.uniform(0.0, 3.0, N_TRIALS),
        "satisfactions": rng.uniform(0.0, 1.0, N_TRIALS),
        "upsilons": rng.uniform(0.0, 1.0, N_TRIALS),
        "epsilons": rng.uniform(0.1, 2.0, N_TRIALS),
    }


class TestClipIntention:
    def test_clipped_values_stay_in_range(self, draws):
        raw = provider_intention_vector(
            draws["preferences"], draws["utilizations"], draws["satisfactions"]
        )
        clipped = clip_intention(raw)
        assert (clipped >= -1.0).all()
        assert (clipped <= 1.0).all()

    def test_idempotent(self, draws):
        raw = consumer_intention_vector(
            draws["preferences"], draws["reputations"]
        )
        once = clip_intention(raw)
        np.testing.assert_array_equal(clip_intention(once), once)

    def test_identity_inside_range(self):
        values = np.linspace(-1.0, 1.0, 41)
        np.testing.assert_array_equal(clip_intention(values), values)
        assert clip_intention(0.25) == 0.25

    def test_scalar_form_matches_array_form(self, draws):
        raw = provider_intention_vector(
            draws["preferences"], draws["utilizations"], draws["satisfactions"]
        )
        scalars = np.asarray([clip_intention(float(v)) for v in raw])
        np.testing.assert_array_equal(clip_intention(raw), scalars)


class TestConsumerIntentionProperties:
    def test_vector_matches_scalar_reference(self, draws):
        for i in range(N_TRIALS):
            expected = consumer_intention(
                draws["preferences"][i],
                draws["reputations"][i],
                upsilon=draws["upsilons"][i],
                epsilon=draws["epsilons"][i],
            )
            actual = consumer_intention_vector(
                np.asarray([draws["preferences"][i]]),
                np.asarray([draws["reputations"][i]]),
                upsilon=draws["upsilons"][i],
                epsilon=draws["epsilons"][i],
            )[0]
            assert actual == pytest.approx(expected, rel=1e-12), i

    def test_positive_branch_bounded_by_one(self, draws):
        values = consumer_intention_vector(
            draws["preferences"], draws["reputations"]
        )
        positive = values[values > 0]
        assert (positive <= 1.0).all()

    def test_sign_structure(self, draws):
        prf, rep = draws["preferences"], draws["reputations"]
        values = consumer_intention_vector(prf, rep)
        both_positive = (prf > 0) & (rep > 0)
        assert (values[both_positive] >= 0.0).all()
        assert (values[~both_positive] < 0.0).all()


class TestProviderIntentionProperties:
    def test_vector_matches_scalar_reference(self, draws):
        for i in range(N_TRIALS):
            expected = provider_intention(
                draws["preferences"][i],
                draws["utilizations"][i],
                draws["satisfactions"][i],
                epsilon=draws["epsilons"][i],
            )
            actual = provider_intention_vector(
                np.asarray([draws["preferences"][i]]),
                np.asarray([draws["utilizations"][i]]),
                np.asarray([draws["satisfactions"][i]]),
                epsilon=draws["epsilons"][i],
            )[0]
            assert actual == pytest.approx(expected, rel=1e-12), i

    def test_positive_branch_bounded_by_one(self, draws):
        values = provider_intention_vector(
            draws["preferences"], draws["utilizations"], draws["satisfactions"]
        )
        positive = values[values > 0]
        assert positive.size > 0
        assert (positive <= 1.0).all()

    def test_wanting_idle_provider_is_positive(self, draws):
        prf, ut = draws["preferences"], draws["utilizations"]
        values = provider_intention_vector(prf, ut, draws["satisfactions"])
        wanting_and_idle = (prf > 0) & (ut < 1.0)
        assert (values[wanting_and_idle] >= 0.0).all()
        assert (values[~wanting_and_idle] < 0.0).all()

    def test_clipped_vectors_feed_satisfaction_model(self, draws):
        """End to end: what the engine records stays inside [-1, 1]."""
        clipped = clip_intention(
            provider_intention_vector(
                draws["preferences"],
                draws["utilizations"],
                draws["satisfactions"],
            )
        )
        assert (np.abs(clipped) <= 1.0).all()
        assert np.isfinite(clipped).all()
