"""Tests for provider ranking and selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import rank_providers, select_top


class TestRankProviders:
    def test_orders_best_first(self, rng):
        scores = np.array([0.1, 0.9, 0.5])
        ranking = rank_providers(scores, rng=rng)
        assert ranking.tolist() == [1, 2, 0]

    def test_index_tie_break_is_stable(self):
        scores = np.array([0.5, 0.9, 0.5])
        ranking = rank_providers(scores, tie_break="index")
        assert ranking.tolist() == [1, 0, 2]

    def test_random_tie_break_spreads_ties(self, rng):
        scores = np.zeros(4)
        firsts = {
            int(rank_providers(scores, rng=rng)[0]) for _ in range(200)
        }
        assert firsts == {0, 1, 2, 3}

    def test_random_tie_break_requires_rng(self):
        with pytest.raises(ValueError):
            rank_providers(np.array([0.5, 0.5]), rng=None, tie_break="random")

    def test_rejects_nan_scores(self, rng):
        with pytest.raises(ValueError):
            rank_providers(np.array([0.5, float("nan")]), rng=rng)

    def test_rejects_unknown_tie_break(self, rng):
        with pytest.raises(ValueError):
            rank_providers(np.array([0.5]), rng=rng, tie_break="alphabetical")

    def test_rejects_2d_scores(self, rng):
        with pytest.raises(ValueError):
            rank_providers(np.zeros((2, 2)), rng=rng)

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_is_a_score_sorted_permutation(self, scores):
        values = np.asarray(scores)
        ranking = rank_providers(
            values, rng=np.random.default_rng(0), tie_break="random"
        )
        assert sorted(ranking.tolist()) == list(range(len(scores)))
        ranked_scores = values[ranking]
        assert np.all(np.diff(ranked_scores) <= 1e-12)


class TestSelectTop:
    def test_truncates_to_n_desired(self):
        ranking = np.array([3, 1, 2, 0])
        assert select_top(ranking, 2).tolist() == [3, 1]

    def test_returns_all_when_n_exceeds_candidates(self):
        """Algorithm 1: when q.n > N, all N providers are selected."""
        ranking = np.array([1, 0])
        assert select_top(ranking, 5).tolist() == [1, 0]

    def test_rejects_non_positive_n(self):
        with pytest.raises(ValueError):
            select_top(np.array([0]), 0)
