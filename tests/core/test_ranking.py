"""Tests for provider ranking and selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import rank_providers, select_top, top_selection


class TestRankProviders:
    def test_orders_best_first(self, rng):
        scores = np.array([0.1, 0.9, 0.5])
        ranking = rank_providers(scores, rng=rng)
        assert ranking.tolist() == [1, 2, 0]

    def test_index_tie_break_is_stable(self):
        scores = np.array([0.5, 0.9, 0.5])
        ranking = rank_providers(scores, tie_break="index")
        assert ranking.tolist() == [1, 0, 2]

    def test_random_tie_break_spreads_ties(self, rng):
        scores = np.zeros(4)
        firsts = {
            int(rank_providers(scores, rng=rng)[0]) for _ in range(200)
        }
        assert firsts == {0, 1, 2, 3}

    def test_random_tie_break_requires_rng(self):
        with pytest.raises(ValueError):
            rank_providers(np.array([0.5, 0.5]), rng=None, tie_break="random")

    def test_rejects_nan_scores(self, rng):
        with pytest.raises(ValueError):
            rank_providers(np.array([0.5, float("nan")]), rng=rng)

    def test_rejects_unknown_tie_break(self, rng):
        with pytest.raises(ValueError):
            rank_providers(np.array([0.5]), rng=rng, tie_break="alphabetical")

    def test_rejects_2d_scores(self, rng):
        with pytest.raises(ValueError):
            rank_providers(np.zeros((2, 2)), rng=rng)

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_is_a_score_sorted_permutation(self, scores):
        values = np.asarray(scores)
        ranking = rank_providers(
            values, rng=np.random.default_rng(0), tie_break="random"
        )
        assert sorted(ranking.tolist()) == list(range(len(scores)))
        ranked_scores = values[ranking]
        assert np.all(np.diff(ranked_scores) <= 1e-12)


class TestSelectTop:
    def test_truncates_to_n_desired(self):
        ranking = np.array([3, 1, 2, 0])
        assert select_top(ranking, 2).tolist() == [3, 1]

    def test_returns_all_when_n_exceeds_candidates(self):
        """Algorithm 1: when q.n > N, all N providers are selected."""
        ranking = np.array([1, 0])
        assert select_top(ranking, 5).tolist() == [1, 0]

    def test_rejects_non_positive_n(self):
        with pytest.raises(ValueError):
            select_top(np.array([0]), 0)


class TestTopSelection:
    @given(
        scores=st.lists(
            # A tiny value set forces heavy ties, the case where the
            # linear-scan fast path could diverge from the full sort.
            st.sampled_from([-1.5, -0.25, 0.0, 0.7, 0.7, 1.0]),
            min_size=1,
            max_size=25,
        ),
        n_select=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=150)
    def test_matches_full_ranking_slice_and_rng_stream(
        self, scores, n_select, seed
    ):
        """Property: top_selection ≡ rank_providers[:n], same RNG use."""
        values = np.array(scores)
        rng_full = np.random.default_rng(seed)
        rng_top = np.random.default_rng(seed)
        full = rank_providers(values, rng=rng_full)
        top = top_selection(values, n_select, rng=rng_top)
        np.testing.assert_array_equal(
            top, full[: min(n_select, values.size)]
        )
        # Both paths must consume the identical jitter draw so the
        # engine's RNG stream is unchanged whichever is used.
        assert (
            rng_full.bit_generator.state == rng_top.bit_generator.state
        )

    def test_index_tie_break_takes_first_maximum(self):
        scores = np.array([0.5, 0.9, 0.9, 0.1])
        assert top_selection(scores, 1, tie_break="index").tolist() == [1]

    def test_requires_rng_for_random_tie_break(self):
        with pytest.raises(ValueError):
            top_selection(np.array([0.5, 0.5]), 1, rng=None)

    def test_rejects_nan_and_bad_n(self, rng):
        with pytest.raises(ValueError):
            top_selection(np.array([0.5, float("nan")]), 1, rng=rng)
        with pytest.raises(ValueError):
            top_selection(np.array([0.5]), 0, rng=rng)

    def test_single_candidate_consumes_no_jitter(self, rng):
        state_before = rng.bit_generator.state
        assert top_selection(np.array([0.3]), 1, rng=rng).tolist() == [0]
        assert rng.bit_generator.state == state_before
