"""Tests for Definition 9 and Equation 6 (scoring)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scoring import (
    omega,
    omega_surface,
    omega_vector,
    provider_score,
    provider_score_vector,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
intention = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


class TestOmega:
    def test_equal_satisfactions_are_neutral(self):
        assert omega(0.5, 0.5) == 0.5
        assert omega(0.0, 0.0) == 0.5

    def test_satisfied_consumer_weighs_provider_interests(self):
        """δs(c) > δs(p) → ω > 0.5 → more weight to the provider."""
        assert omega(0.9, 0.1) == pytest.approx(0.9)

    def test_satisfied_provider_weighs_consumer_interests(self):
        assert omega(0.1, 0.9) == pytest.approx(0.1)

    def test_extremes(self):
        assert omega(1.0, 0.0) == 1.0
        assert omega(0.0, 1.0) == 0.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            omega(1.1, 0.5)
        with pytest.raises(ValueError):
            omega(0.5, -0.1)

    @given(unit, unit)
    def test_bounds(self, cs, ps):
        assert 0.0 <= omega(cs, ps) <= 1.0

    @given(unit, st.lists(unit, min_size=1, max_size=10))
    def test_vector_agreement(self, cs, provider_sats):
        vector = omega_vector(cs, np.array(provider_sats))
        for i, ps in enumerate(provider_sats):
            assert vector[i] == pytest.approx(omega(cs, ps))

    def test_vector_validates_range(self):
        with pytest.raises(ValueError):
            omega_vector(0.5, np.array([1.2]))
        with pytest.raises(ValueError):
            omega_vector(1.2, np.array([0.5]))

    def test_surface_is_figure_3(self):
        provider_axis, consumer_axis, grid = omega_surface(points=5)
        assert grid.shape == (5, 5)
        # Corners: fully satisfied consumer / dissatisfied provider → 1.
        assert grid[0, -1] == pytest.approx(1.0)
        assert grid[-1, 0] == pytest.approx(0.0)
        assert grid[2, 2] == pytest.approx(0.5)


class TestProviderScore:
    def test_positive_branch_geometric_tradeoff(self):
        value = provider_score(0.49, 0.81, omega_value=0.5)
        assert value == pytest.approx(np.sqrt(0.49) * np.sqrt(0.81))

    def test_omega_one_scores_provider_only(self):
        assert provider_score(0.6, 0.9, omega_value=1.0) == pytest.approx(0.6)

    def test_omega_zero_scores_consumer_only(self):
        """The paper's cooperative-provider deployment: ω = 0."""
        assert provider_score(0.6, 0.9, omega_value=0.0) == pytest.approx(0.9)

    def test_negative_when_either_intention_non_positive(self):
        assert provider_score(-0.2, 0.9, omega_value=0.5) < 0
        assert provider_score(0.9, -0.2, omega_value=0.5) < 0
        assert provider_score(0.0, 0.9, omega_value=0.5) < 0

    def test_accepts_sub_minus_one_provider_intention(self):
        """Definition 8's negative branch can emit values below -1; the
        score's negative branch must handle them."""
        value = provider_score(-2.5, 0.9, omega_value=0.5)
        assert value < 0
        assert np.isfinite(value)

    def test_negative_branch_orders_by_intentions(self):
        bad = provider_score(-0.9, -0.9, omega_value=0.5)
        less_bad = provider_score(-0.1, -0.1, omega_value=0.5)
        assert less_bad > bad

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            provider_score(0.5, 0.5, omega_value=1.2)
        with pytest.raises(ValueError):
            provider_score(1.5, 0.5, omega_value=0.5)
        with pytest.raises(ValueError):
            provider_score(0.5, 0.5, omega_value=0.5, epsilon=0.0)

    @given(intention, intention, unit)
    def test_scalar_vector_agreement(self, pi, ci, om):
        scalar = provider_score(pi, ci, om)
        vector = provider_score_vector(
            np.array([pi]), np.array([ci]), np.array([om])
        )
        assert vector[0] == pytest.approx(scalar, abs=1e-12)

    @given(intention, intention, unit)
    def test_sign_matches_branch(self, pi, ci, om):
        value = provider_score(pi, ci, om)
        if pi > 0 and ci > 0:
            assert value > 0
        else:
            assert value < 0

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
        unit,
    )
    def test_positive_branch_bounded_by_one(self, pi, ci, om):
        assert provider_score(pi, ci, om) <= 1.0

    def test_vector_validates_omega_range(self):
        with pytest.raises(ValueError):
            provider_score_vector(
                np.array([0.5]), np.array([0.5]), np.array([1.5])
            )
