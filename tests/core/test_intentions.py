"""Tests for Definitions 7 and 8 (participant intentions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intentions import (
    clip_intention,
    consumer_intention,
    consumer_intention_vector,
    provider_intention,
    provider_intention_surface,
    provider_intention_vector,
)

signed = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
utilization = st.floats(min_value=0.0, max_value=3.0, allow_nan=False)


class TestConsumerIntention:
    def test_positive_branch_geometric_tradeoff(self):
        value = consumer_intention(0.64, 0.25, upsilon=0.5)
        assert value == pytest.approx(np.sqrt(0.64) * np.sqrt(0.25))

    def test_upsilon_one_reduces_to_preference_when_positive(self):
        assert consumer_intention(0.7, 0.9, upsilon=1.0) == pytest.approx(0.7)

    def test_upsilon_zero_reduces_to_reputation_when_positive(self):
        assert consumer_intention(0.7, 0.9, upsilon=0.0) == pytest.approx(0.9)

    def test_negative_preference_takes_negative_branch(self):
        value = consumer_intention(-0.5, 0.9, upsilon=1.0)
        # -( (1 - (-0.5) + 1)^1 × (...)^0 ) = -2.5
        assert value == pytest.approx(-2.5)

    def test_negative_branch_is_monotone_in_preference(self):
        worse = consumer_intention(-0.9, 0.5, upsilon=0.7)
        better = consumer_intention(-0.1, 0.5, upsilon=0.7)
        assert better > worse

    def test_epsilon_prevents_zero_at_extremes(self):
        # preference 1 but reputation ≤ 0: negative branch must not be 0.
        value = consumer_intention(1.0, 0.0, upsilon=0.5, epsilon=1.0)
        assert value < 0.0

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            consumer_intention(1.5, 0.5)
        with pytest.raises(ValueError):
            consumer_intention(0.5, -2.0)
        with pytest.raises(ValueError):
            consumer_intention(0.5, 0.5, upsilon=1.5)
        with pytest.raises(ValueError):
            consumer_intention(0.5, 0.5, epsilon=0.0)

    @given(signed, signed, unit)
    def test_scalar_vector_agreement(self, preference, reputation, upsilon):
        scalar = consumer_intention(preference, reputation, upsilon)
        vector = consumer_intention_vector(
            np.array([preference]), np.array([reputation]), upsilon
        )
        assert vector[0] == pytest.approx(scalar, abs=1e-12)

    @given(signed, signed, unit)
    def test_sign_matches_branch_condition(self, preference, reputation, upsilon):
        value = consumer_intention(preference, reputation, upsilon)
        if preference > 0 and reputation > 0:
            assert value > 0
        else:
            assert value < 0


class TestProviderIntention:
    def test_positive_branch_balances_preference_and_load(self):
        value = provider_intention(0.81, 0.36, satisfaction=0.5)
        assert value == pytest.approx(np.sqrt(0.81) * np.sqrt(0.64))

    def test_dissatisfied_provider_follows_preferences(self):
        # δs = 0: utilisation exponent vanishes entirely.
        assert provider_intention(0.7, 0.9, satisfaction=0.0) == pytest.approx(
            0.7
        )

    def test_satisfied_provider_follows_utilization(self):
        # δs = 1: preference exponent vanishes entirely.
        assert provider_intention(0.7, 0.25, satisfaction=1.0) == pytest.approx(
            0.75
        )

    def test_overloaded_provider_shows_negative_intention(self):
        value = provider_intention(0.9, 1.5, satisfaction=0.5)
        assert value < 0.0

    def test_unwanted_query_shows_negative_intention(self):
        value = provider_intention(-0.3, 0.1, satisfaction=0.5)
        assert value < 0.0

    def test_negative_branch_worsens_with_utilization(self):
        lighter = provider_intention(-0.5, 0.2, satisfaction=0.5)
        heavier = provider_intention(-0.5, 1.8, satisfaction=0.5)
        assert heavier < lighter

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            provider_intention(2.0, 0.5, 0.5)
        with pytest.raises(ValueError):
            provider_intention(0.5, -0.1, 0.5)
        with pytest.raises(ValueError):
            provider_intention(0.5, 0.5, 1.5)
        with pytest.raises(ValueError):
            provider_intention(0.5, 0.5, 0.5, epsilon=-1.0)

    @given(signed, utilization, unit)
    def test_scalar_vector_agreement(self, preference, ut, satisfaction):
        scalar = provider_intention(preference, ut, satisfaction)
        vector = provider_intention_vector(
            np.array([preference]), np.array([ut]), np.array([satisfaction])
        )
        assert vector[0] == pytest.approx(scalar, abs=1e-12)

    @given(signed, utilization, unit)
    def test_sign_matches_branch_condition(self, preference, ut, satisfaction):
        value = provider_intention(preference, ut, satisfaction)
        if preference > 0 and ut < 1.0:
            assert value > 0
        else:
            assert value < 0

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.0, max_value=0.99),
        unit,
    )
    @settings(max_examples=80)
    def test_positive_branch_bounded_by_one(self, preference, ut, satisfaction):
        assert provider_intention(preference, ut, satisfaction) <= 1.0


class TestFigure2Surface:
    def test_surface_shape_and_axes(self):
        prefs, uts, surface = provider_intention_surface(
            0.5, preference_points=11, utilization_points=21
        )
        assert prefs.shape == (11,)
        assert uts.shape == (21,)
        assert surface.shape == (11, 21)
        assert prefs[0] == -1.0 and prefs[-1] == 1.0
        assert uts[0] == 0.0 and uts[-1] == 2.0

    def test_surface_matches_figure_2_extremes(self):
        """Figure 2: positive peak near (pref→1, Ut→0); the deepest
        negative values at (pref→-1, Ut→2)."""
        _, _, surface = provider_intention_surface(0.5)
        assert surface[-1, 0] == pytest.approx(1.0)  # wants it, idle
        assert surface.min() == surface[0, -1]  # hates it, overloaded
        assert surface[0, -1] == pytest.approx(-3.0)

    def test_rejects_bad_satisfaction(self):
        with pytest.raises(ValueError):
            provider_intention_surface(1.5)


class TestClipIntention:
    def test_scalar_clip(self):
        assert clip_intention(-2.5) == -1.0
        assert clip_intention(0.3) == 0.3
        assert clip_intention(1.7) == 1.0

    def test_array_clip(self):
        values = clip_intention(np.array([-3.0, 0.0, 2.0]))
        assert values.tolist() == [-1.0, 0.0, 1.0]
