"""Tests for Algorithm 1 (the SQLB allocation principle)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sqlb import allocate_query

intentions = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=20,
)


def _allocate(pi, ci, n=1, cs=0.5, ps=None, **kwargs):
    pi = np.asarray(pi, dtype=float)
    ci = np.asarray(ci, dtype=float)
    if ps is None:
        ps = np.full(pi.shape, 0.5)
    return allocate_query(
        provider_intentions=pi,
        consumer_intentions=ci,
        consumer_satisfaction=cs,
        provider_satisfactions=np.asarray(ps, dtype=float),
        n_desired=n,
        rng=np.random.default_rng(7),
        **kwargs,
    )


class TestAllocateQuery:
    def test_selects_highest_scored_provider(self):
        allocation = _allocate([0.9, 0.2, -0.5], [0.9, 0.9, 0.9])
        assert allocation.selected.tolist() == [0]

    def test_mutual_positive_beats_one_sided(self):
        """The motivating example's crux: a provider wanted by both
        sides must outrank providers wanted by only one side."""
        # p0: provider wants it, consumer does not; p1: vice versa;
        # p2: both mildly positive.
        allocation = _allocate([0.9, -0.8, 0.4], [-0.8, 0.9, 0.4])
        assert allocation.selected.tolist() == [2]

    def test_respects_n_desired(self):
        allocation = _allocate([0.9, 0.8, 0.7], [0.9, 0.8, 0.7], n=2)
        assert allocation.selected.tolist() == [0, 1]

    def test_n_larger_than_candidates_selects_all(self):
        allocation = _allocate([0.5, 0.6], [0.5, 0.6], n=9)
        assert sorted(allocation.selected.tolist()) == [0, 1]

    def test_allocation_vector_matches_selection(self):
        allocation = _allocate([0.9, 0.1, 0.5], [0.9, 0.1, 0.5], n=2)
        vector = allocation.allocation_vector
        assert vector.sum() == 2
        assert all(vector[i] == 1 for i in allocation.selected)

    def test_empty_candidate_set_rejected(self):
        with pytest.raises(ValueError):
            _allocate([], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _allocate([0.5, 0.5], [0.5])

    def test_fixed_omega_overrides_equation_6(self):
        # With ω = 0 only consumer intentions matter.
        allocation = _allocate(
            [0.1, 0.9], [0.9, 0.1], fixed_omega=0.0
        )
        assert allocation.selected.tolist() == [0]
        assert allocation.omegas.tolist() == [0.0, 0.0]

    def test_fixed_omega_validated(self):
        with pytest.raises(ValueError):
            _allocate([0.5], [0.5], fixed_omega=1.5)

    def test_equation_6_feeds_per_provider_omegas(self):
        allocation = _allocate(
            [0.5, 0.5], [0.5, 0.5], cs=0.8, ps=[0.2, 0.6]
        )
        assert allocation.omegas.tolist() == pytest.approx([0.8, 0.6])

    def test_dissatisfied_provider_gets_priority(self):
        """Equation 6's equity: both providers show a strong intention
        (stronger than the consumer's), and the less satisfied one wins
        because its higher ω weighs its intention more."""
        allocation = _allocate(
            [0.9, 0.9], [0.3, 0.3], cs=0.5, ps=[0.9, 0.1]
        )
        assert allocation.selected.tolist() == [1]

    @given(intentions, st.integers(min_value=1, max_value=5))
    @settings(max_examples=80)
    def test_selection_is_valid_subset(self, pi, n):
        ci = list(reversed(pi))
        allocation = _allocate(pi, ci, n=n)
        selected = allocation.selected
        assert selected.size == min(n, len(pi))
        assert np.unique(selected).size == selected.size
        assert selected.min() >= 0 and selected.max() < len(pi)

    @given(intentions)
    @settings(max_examples=80)
    def test_ranking_is_score_ordered_permutation(self, pi):
        allocation = _allocate(pi, pi)
        ranking = allocation.ranking
        assert sorted(ranking.tolist()) == list(range(len(pi)))
        ranked = allocation.scores[ranking]
        assert np.all(np.diff(ranked) <= 1e-12)
