"""Ops bundle: deterministic single-file HTML, embedded data blob."""

from __future__ import annotations

import json

from repro.telemetry.bundle import render_bundle, write_bundle
from tests.telemetry.test_timeline import two_worker_drain


class TestDeterminism:
    def test_double_render_is_byte_identical(self):
        events = two_worker_drain()
        assert render_bundle(events) == render_bundle(events)

    def test_write_bundle_round_trip(self, tmp_path):
        out = tmp_path / "bundle.html"
        write_bundle(out, two_worker_drain())
        first = out.read_bytes()
        write_bundle(out, two_worker_drain())
        assert out.read_bytes() == first
        assert not [p for p in tmp_path.iterdir() if p.name.startswith(".")]


class TestContent:
    def test_sections_present(self):
        html = render_bundle(two_worker_drain())
        assert "<svg" in html  # worker lanes
        assert "Drain decomposition" in html
        assert "Engine phases" in html
        assert "Fleet counters" in html
        assert "straggler <b>w1</b>" in html

    def test_self_contained(self):
        html = render_bundle(two_worker_drain())
        # No external fetches of any kind.
        assert "http://" not in html.replace(
            "http://www.w3.org/2000/svg", ""
        )
        assert "https://" not in html
        assert "<link" not in html
        assert 'src="' not in html

    def test_embedded_blob_parses_and_matches(self):
        html = render_bundle(two_worker_drain())
        marker = '<script type="application/json" id="bundle-data">'
        start = html.index(marker) + len(marker)
        end = html.index("</script>", start)
        blob = json.loads(html[start:end].replace("<\\/", "</"))
        assert blob["timeline"]["drain"]["jobs"] == 3
        assert blob["bench"] is None

    def test_bench_section_when_provided(self):
        bench = {
            "aggregate_qps": 1234.5,
            "engine_version": "1",
            "mode": "full",
            "cells": {"captive_small/sqlb": {
                "qps": 1000.0, "queries": 50, "seconds": 0.05,
            }},
        }
        html = render_bundle(two_worker_drain(), bench=bench)
        assert "Committed benchmark baseline" in html
        assert "captive_small/sqlb" in html

    def test_title_is_escaped(self):
        html = render_bundle([], title="<drain> & co")
        assert "<title>&lt;drain&gt; &amp; co</title>" in html

    def test_empty_stream_renders(self):
        html = render_bundle([])
        assert "no acked jobs to draw" in html


class TestBenchHistorySection:
    ROWS = [
        {"t": 1754000000, "mode": "quick", "engine_version": "1",
         "aggregate_qps": 5000.0, "cells": {"a": 1}},
        {"t": 1754100000, "mode": "quick", "engine_version": "1",
         "aggregate_qps": 5500.0, "cells": {"a": 1}},
        {"mode": "full", "engine_version": "1",
         "aggregate_qps": 9000.0, "cells": {"a": 1, "b": 2}},
    ]

    def test_section_present_and_deterministic(self):
        events = two_worker_drain()
        html = render_bundle(events, bench_history=self.ROWS)
        assert "Benchmark history" in html
        # Per-mode delta: second quick row vs first, full row has none.
        assert "+10%" in html
        assert "baseline" in html
        # Timestamps render in UTC — independent of the reader's TZ.
        assert "2025-07-31 22:13" in html
        assert html == render_bundle(events, bench_history=self.ROWS)

    def test_omitted_when_not_provided(self):
        assert "Benchmark history" not in render_bundle(two_worker_drain())


class TestAuditSection:
    PAYLOAD = {
        "method": "sqlb",
        "seed": 3,
        "decisions": 100,
        "unserved": 2,
        "imposed": 5,
        "anomaly_count": 1,
        "providers": [
            {"provider": 0, "allocations": 60, "share": 0.6,
             "capacity_share": 0.5, "imposed": 5},
            {"provider": 1, "allocations": 40, "share": 0.4,
             "capacity_share": 0.5, "imposed": 0},
        ],
        "anomalies": [
            {"kind": "starvation", "provider": 1, "longest_gap": 80,
             "expected_gap": 2.0, "capacity_share": 0.5,
             "allocations": 40},
        ],
    }

    def test_section_present_and_deterministic(self):
        events = two_worker_drain()
        html = render_bundle(events, audit=[self.PAYLOAD])
        assert "Decision audit — sqlb seed 3" in html
        assert "<b>starvation</b>" in html
        assert html == render_bundle(events, audit=[self.PAYLOAD])

    def test_blob_carries_audit_payloads(self):
        html = render_bundle(two_worker_drain(), audit=[self.PAYLOAD])
        marker = '<script type="application/json" id="bundle-data">'
        start = html.index(marker) + len(marker)
        end = html.index("</script>", start)
        blob = json.loads(html[start:end].replace("<\\/", "</"))
        assert blob["audit"][0]["method"] == "sqlb"
        assert blob["bench_history"] is None

    def test_omitted_when_not_provided(self):
        assert "Decision audit" not in render_bundle(two_worker_drain())
