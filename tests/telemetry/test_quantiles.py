"""Tests for the P² streaming quantile estimator."""

from __future__ import annotations

import math
import random

import pytest

from repro.telemetry.quantiles import P2Quantile


class TestSmallSamples:
    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_five_or_fewer_observations_are_exact(self):
        estimator = P2Quantile(0.5)
        for value in (5.0, 1.0, 4.0):
            estimator.observe(value)
        # Nearest-rank over the sorted buffer [1, 4, 5].
        assert estimator.value() == 4.0

    def test_single_observation(self):
        estimator = P2Quantile(0.9)
        estimator.observe(7.0)
        assert estimator.value() == 7.0


class TestValidation:
    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_quantile_must_be_strictly_inside_unit_interval(self, q):
        with pytest.raises(ValueError):
            P2Quantile(q)


class TestAccuracy:
    """P² tracks the exact quantile closely on a stationary stream."""

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_gaussian_stream(self, q):
        rng = random.Random(42)
        values = [rng.gauss(10.0, 2.0) for _ in range(20_000)]
        estimator = P2Quantile(q)
        for value in values:
            estimator.observe(value)
        exact = sorted(values)[int(q * len(values))]
        # Tolerance in units of the distribution's spread.
        assert abs(estimator.value() - exact) < 0.15

    def test_uniform_stream_p50_near_midpoint(self):
        rng = random.Random(7)
        estimator = P2Quantile(0.5)
        for _ in range(10_000):
            estimator.observe(rng.random())
        assert abs(estimator.value() - 0.5) < 0.05

    def test_count_tracks_observations(self):
        estimator = P2Quantile(0.5)
        for value in range(17):
            estimator.observe(float(value))
        assert estimator.count == 17

    def test_markers_stay_ordered(self):
        """Marker heights are maintained non-decreasing (P² invariant)."""
        rng = random.Random(3)
        estimator = P2Quantile(0.9)
        for _ in range(5_000):
            estimator.observe(rng.expovariate(1.0))
        heights = estimator._heights
        assert all(a <= b for a, b in zip(heights, heights[1:]))
