"""Canonical merged streams: determinism, refusal, zero-byte husks."""

from __future__ import annotations

import pytest

from repro.telemetry.events import (
    TelemetryReadError,
    read_events,
    read_events_dir,
)
from repro.telemetry.merge import (
    MERGED_EVENTS_NAME,
    load_stream,
    merge_events,
)
from repro.telemetry.registry import telemetry_session


def write_process_file(run_dir, name: str, events: int) -> None:
    """One worker-like events file via the real registry flush path."""
    with telemetry_session(run_dir) as telemetry:
        for index in range(events):
            telemetry.event("queue", f"{name}-{index}")
        path = telemetry.flush()
    assert path is not None and path.parent == run_dir


class TestMergeEvents:
    def test_merge_unions_every_file(self, tmp_path):
        write_process_file(tmp_path, "a", 3)
        write_process_file(tmp_path, "b", 2)
        summary = merge_events(tmp_path)
        assert summary["files"] == 2
        # 3 + 2 events plus one snapshot per flushed file.
        assert summary["events"] == 7
        merged = read_events(tmp_path / MERGED_EVENTS_NAME)
        # The trailing manifest records the inputs and the digest.
        manifest = merged[-1]
        assert manifest["kind"] == "merge"
        assert manifest["attrs"]["events"] == 7
        assert manifest["attrs"]["stream_digest"] == summary["digest"]
        assert len(manifest["attrs"]["files"]) == 2

    def test_double_merge_is_byte_identical(self, tmp_path):
        write_process_file(tmp_path, "a", 4)
        write_process_file(tmp_path, "b", 4)
        out = tmp_path / MERGED_EVENTS_NAME
        merge_events(tmp_path)
        first = out.read_bytes()
        merge_events(tmp_path)
        assert out.read_bytes() == first

    def test_merged_output_is_not_a_merge_input(self, tmp_path):
        write_process_file(tmp_path, "a", 2)
        first = merge_events(tmp_path)
        second = merge_events(tmp_path)
        # merged.jsonl sits in the same directory but never feeds back.
        assert second["files"] == first["files"] == 1
        assert second["events"] == first["events"]

    def test_canonical_order_ignores_input_file_order(self, tmp_path):
        write_process_file(tmp_path, "a", 3)
        write_process_file(tmp_path, "b", 3)
        merge_events(tmp_path)
        merged = read_events(tmp_path / MERGED_EVENTS_NAME)[:-1]
        keys = [(e["t_wall"], e["pid"], e["id"]) for e in merged]
        assert keys == sorted(keys)

    def test_torn_input_refuses_whole_merge(self, tmp_path):
        write_process_file(tmp_path, "a", 2)
        torn = tmp_path / "events-host-999-0.jsonl"
        torn.write_text('{"v": 1, "kind": "queue"\n')
        with pytest.raises(TelemetryReadError):
            merge_events(tmp_path)

    def test_missing_dir_and_empty_dir_refuse(self, tmp_path):
        with pytest.raises(TelemetryReadError):
            merge_events(tmp_path / "nope")
        (tmp_path / "empty").mkdir()
        with pytest.raises(TelemetryReadError):
            merge_events(tmp_path / "empty")


class TestZeroByteHusks:
    """A worker killed between mkstemp and first flush leaves a
    zero-byte events file; that is 'no events', never a torn file."""

    def test_read_events_zero_byte_is_empty(self, tmp_path):
        husk = tmp_path / "events-host-1-0.jsonl"
        husk.touch()
        assert read_events(husk) == []

    def test_dir_read_and_merge_skip_husk_events(self, tmp_path):
        write_process_file(tmp_path, "a", 2)
        (tmp_path / "events-host-999-0.jsonl").touch()
        assert len(read_events_dir(tmp_path)) == 3  # 2 + snapshot
        summary = merge_events(tmp_path)
        assert summary["files"] == 2  # husk read, contributes nothing
        assert summary["events"] == 3


class TestLoadStream:
    def test_dir_prefers_merged_file(self, tmp_path):
        write_process_file(tmp_path, "a", 2)
        merge_events(tmp_path)
        events = load_stream(tmp_path)
        assert events[-1]["kind"] == "merge"

    def test_dir_without_merge_unions_raw_files(self, tmp_path):
        write_process_file(tmp_path, "a", 2)
        events = load_stream(tmp_path)
        assert all(e["kind"] != "merge" for e in events)
        assert len(events) == 3

    def test_single_file_path(self, tmp_path):
        write_process_file(tmp_path, "a", 1)
        merge_events(tmp_path)
        events = load_stream(tmp_path / MERGED_EVENTS_NAME)
        assert events[-1]["kind"] == "merge"
