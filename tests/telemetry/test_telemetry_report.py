"""Tests for the telemetry report: aggregation, merging, rendering."""

from __future__ import annotations

import pytest

from repro.telemetry.events import TelemetryReadError, atomic_write_bytes
from repro.telemetry.registry import Telemetry
from repro.telemetry.report import (
    PHASE_ORDER,
    format_telemetry_report,
    telemetry_report,
)


def flush_process(tmp_path, *, pid_counters, phases=(), timer_obs=()):
    """Write one process's events file through the real registry."""
    telemetry = Telemetry(tmp_path)
    for name, seconds in phases:
        telemetry.event("phase", name, duration_s=seconds)
    for name, value in pid_counters.items():
        telemetry.count(name, value)
    for name, seconds in timer_obs:
        telemetry.observe(name, seconds)
    telemetry.flush()
    return telemetry


class TestAggregation:
    def test_phases_ordered_and_shared(self, tmp_path):
        flush_process(
            tmp_path,
            pid_counters={},
            phases=[("log_push", 3.0), ("arrival", 1.0)],
        )
        report = telemetry_report(tmp_path)
        assert [row["phase"] for row in report["phases"]] == [
            "arrival",
            "log_push",
        ]
        assert report["phases"][0]["share"] == pytest.approx(0.25)
        assert report["phases"][1]["share"] == pytest.approx(0.75)

    def test_counters_sum_across_processes(self, tmp_path):
        flush_process(tmp_path, pid_counters={"executor.jobs": 2})
        flush_process(tmp_path, pid_counters={"executor.jobs": 3})
        report = telemetry_report(tmp_path)
        assert report["counters"]["executor.jobs"] == 5
        assert report["processes"] == 1  # same pid, two files

    def test_cache_efficacy_rates(self, tmp_path):
        flush_process(
            tmp_path,
            pid_counters={
                "engine.candidate_cache_hits": 9,
                "engine.candidate_cache_misses": 1,
                "store.hits": 1,
                "store.misses": 3,
                "engine.ring_uniform_pushes": 6,
                "engine.ring_scalar_pushes": 2,
            },
        )
        caches = telemetry_report(tmp_path)["caches"]
        assert caches["candidate_cache"]["hit_rate"] == pytest.approx(0.9)
        assert caches["result_store"]["hit_rate"] == pytest.approx(0.25)
        assert caches["ring_push"]["fast_path_share"] == pytest.approx(0.75)

    def test_empty_rates_are_none_not_zero_division(self, tmp_path):
        flush_process(tmp_path, pid_counters={})
        caches = telemetry_report(tmp_path)["caches"]
        assert caches["candidate_cache"]["hit_rate"] is None
        assert caches["result_store"]["hit_rate"] is None
        assert caches["ring_push"]["fast_path_share"] is None

    def test_timers_merge_exactly_where_possible(self, tmp_path):
        flush_process(
            tmp_path,
            pid_counters={},
            timer_obs=[("executor.job_s", 1.0), ("executor.job_s", 3.0)],
        )
        flush_process(
            tmp_path,
            pid_counters={},
            timer_obs=[("executor.job_s", 5.0)],
        )
        timer = telemetry_report(tmp_path)["timers"]["executor.job_s"]
        assert timer["count"] == 3
        assert timer["total_s"] == pytest.approx(9.0)
        assert timer["mean_s"] == pytest.approx(3.0)
        assert timer["min_s"] == 1.0
        assert timer["max_s"] == 5.0
        # Merged quantiles are count-weighted averages of per-process
        # estimates: the first process's exact p50 of [1.0, 3.0] is 1.0
        # (nearest rank), the second's is 5.0 → (1.0 * 2 + 5.0) / 3.
        assert timer["p50_s"] == pytest.approx(7.0 / 3.0)

    def test_run_and_cell_span_counts(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        with telemetry.span("cell", "sqlb/seed1"):
            with telemetry.span("run", "sqlb"):
                pass
        telemetry.flush()
        report = telemetry_report(tmp_path)
        assert report["runs"] == 1
        assert report["cells"] == 1


class TestRefusal:
    def test_torn_file_fails_the_whole_report(self, tmp_path):
        flush_process(tmp_path, pid_counters={"executor.jobs": 1})
        [path] = tmp_path.glob("events-*.jsonl")
        text = path.read_text()
        atomic_write_bytes(path, text[: len(text) - 10].encode())
        with pytest.raises(TelemetryReadError):
            telemetry_report(tmp_path)


class TestRendering:
    def test_human_format_smoke(self, tmp_path):
        flush_process(
            tmp_path,
            pid_counters={
                "engine.candidate_cache_hits": 9,
                "engine.candidate_cache_misses": 1,
                "executor.jobs": 2,
            },
            phases=[(name, 0.1) for name in PHASE_ORDER],
            timer_obs=[("engine.dispatch_s", 0.001)],
        )
        text = format_telemetry_report(telemetry_report(tmp_path))
        assert "phase breakdown:" in text
        assert "candidate cache" in text
        assert "90.0%" in text
        assert "engine.dispatch_s" in text
        assert "executor.jobs" in text
        # Cache counters are folded into the efficacy table, not
        # repeated in the counters listing.
        assert "engine.candidate_cache_hits" not in text
