"""Overhead guard: enabled telemetry stays within a few percent.

The instrumentation budget the ISSUE sets is <= 5 % on the standard
perf matrix.  This test times the matrix's quick cells (the CI-sized
subset) with telemetry off and on, compares best-of-N per mode, and
retries a few times before failing — wall-clock ratios on shared CI
boxes are noisy, and a transient scheduler hiccup must not read as an
instrumentation regression.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.perf import PERF_MATRIX
from repro.simulation.engine import run_simulation
from repro.telemetry.registry import telemetry_session

#: Allowed enabled/disabled ratio.  The ISSUE budget is 1.05; the extra
#: margin absorbs timer jitter at these sub-second cell durations
#: without masking a structural slowdown (an ungated hot-path hook
#: costs tens of percent, not five).
MAX_RATIO = 1.08

ROUNDS = 3
REPEATS = 3


def _best(config, method, enabled) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        if enabled:
            with telemetry_session():
                started = time.perf_counter()
                run_simulation(config, method, seed=1)
                elapsed = time.perf_counter() - started
        else:
            started = time.perf_counter()
            run_simulation(config, method, seed=1)
            elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best


@pytest.mark.parametrize(
    "cell", [cell for cell in PERF_MATRIX if cell.quick],
    ids=lambda cell: cell.name,
)
def test_enabled_overhead_within_budget(cell):
    config = cell.build()
    # Warm both paths (imports, caches) outside the timed region.
    run_simulation(config, "sqlb", seed=1)
    with telemetry_session():
        run_simulation(config, "sqlb", seed=1)

    ratios = []
    for _ in range(ROUNDS):
        disabled = _best(config, "sqlb", enabled=False)
        enabled = _best(config, "sqlb", enabled=True)
        ratio = enabled / disabled
        ratios.append(ratio)
        if ratio <= MAX_RATIO:
            return
    raise AssertionError(
        f"{cell.name}: telemetry overhead exceeded {MAX_RATIO:.2f}x in "
        f"every round (ratios: {[f'{r:.3f}' for r in ratios]})"
    )
