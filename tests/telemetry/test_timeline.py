"""Drain timeline math: exact decomposition, stragglers, orphans."""

from __future__ import annotations

import pytest

from repro.telemetry.timeline import drain_timeline, format_timeline

TA = "aaaaaaaaaaaaaaaa"
TB = "bbbbbbbbbbbbbbbb"
TC = "cccccccccccccccc"


def ev(kind, name, t, pid=1, dur=0.0, span=1, **attrs):
    return {
        "v": 1,
        "kind": kind,
        "name": name,
        "id": span,
        "parent": None,
        "pid": pid,
        "t_wall": t,
        "dur_s": dur,
        "attrs": attrs,
    }


def claim(job, owner, trace, t, pid=1):
    return ev("queue", "claim", t, pid=pid, id=job, owner=owner, trace=trace)


def ack(job, owner, trace, t, pid=1, state="simulated"):
    return ev(
        "queue", "ack", t, pid=pid,
        id=job, owner=owner, state=state, trace=trace,
    )


def two_worker_drain():
    """w1 runs jobs A then B; w2 runs job C.  Engine spans on other pids."""
    return [
        claim("A", "w1", TA, 100.0),
        claim("C", "w2", TC, 100.5),
        ev("cell", "sqlb/seed1", 103.9, pid=11, dur=3.0, trace=TA),
        ev("phase", "arrivals", 101.5, pid=11, dur=1.0, trace=TA),
        ev("phase", "arrivals", 103.0, pid=11, dur=3.0, trace=TA),
        ev("run", "sqlb", 103.8, pid=11, dur=3.2, trace=TA),
        ev("cell", "sqlb/seed3", 101.9, pid=22, dur=1.0, trace=TC),
        ev("phase", "arrivals", 101.8, pid=22, dur=2.0, trace=TC),
        ack("C", "w2", TC, 102.0),
        ack("A", "w1", TA, 104.0),
        claim("B", "w1", TB, 105.0),
        ev("cell", "sqlb/seed2", 107.9, pid=11, dur=2.0, trace=TB),
        ack("B", "w1", TB, 108.0),
    ]


class TestDecomposition:
    def test_queue_wait_execute_idle_sum_to_wall_per_worker(self):
        timeline = drain_timeline(two_worker_drain())
        for lane in timeline["workers"].values():
            assert lane["queue_wait_s"] + lane["execute_s"] + lane[
                "idle_s"
            ] == pytest.approx(lane["wall_s"])

    def test_w1_lane_numbers_exactly(self):
        lane = drain_timeline(two_worker_drain())["workers"]["w1"]
        assert lane["jobs"] == 2
        assert lane["wall_s"] == pytest.approx(8.0)  # 100 → 108
        assert lane["execute_s"] == pytest.approx(5.0)  # 3 + 2
        # busy = (104-100) + (108-105) = 7 → wait 2, idle 1
        assert lane["queue_wait_s"] == pytest.approx(2.0)
        assert lane["idle_s"] == pytest.approx(1.0)
        assert lane["utilization"] == pytest.approx(5.0 / 8.0)

    def test_job_rows_split_wall_into_execute_and_overhead(self):
        jobs = {j["id"]: j for j in drain_timeline(two_worker_drain())["jobs"]}
        job = jobs["A"]
        assert job["wall_s"] == pytest.approx(4.0)
        assert job["execute_s"] == pytest.approx(3.0)
        assert job["overhead_s"] == pytest.approx(1.0)
        assert job["owner"] == "w1"
        assert job["state"] == "simulated"
        assert job["spans"] == {"cells": 1, "runs": 1, "phases": 2}

    def test_drain_summary(self):
        drain = drain_timeline(two_worker_drain())["drain"]
        assert drain["jobs"] == 3
        assert drain["acked"] == 3
        assert drain["unacked"] == 0
        assert drain["workers"] == 2
        assert drain["wall_s"] == pytest.approx(8.0)
        assert drain["orphan_spans"] == 0


class TestCriticalPath:
    def test_straggler_is_last_acking_lane(self):
        critical = drain_timeline(two_worker_drain())["critical_path"]
        assert critical["straggler"] == "w1"
        assert critical["jobs"] == ["A", "B"]
        assert critical["chain_s"] == pytest.approx(7.0)
        assert critical["longest_job"]["id"] == "A"


class TestOrphansAndRetries:
    def test_traceless_engine_span_is_an_orphan(self):
        events = two_worker_drain() + [
            ev("phase", "arrivals", 109.0, pid=33, dur=0.5)
        ]
        assert drain_timeline(events)["drain"]["orphan_spans"] == 1

    def test_unclaimed_trace_spans_are_orphans(self):
        events = two_worker_drain() + [
            ev("cell", "x", 109.0, pid=33, dur=0.5, trace="d" * 16),
            ev("run", "x", 109.0, pid=33, dur=0.5, trace="d" * 16),
        ]
        assert drain_timeline(events)["drain"]["orphan_spans"] == 2

    def test_unacked_job_counted_but_not_in_lanes(self):
        events = two_worker_drain() + [claim("D", "w3", "e" * 16, 109.0)]
        timeline = drain_timeline(events)
        assert timeline["drain"]["unacked"] == 1
        assert "w3" not in timeline["workers"]
        [job] = [j for j in timeline["jobs"] if j["id"] == "D"]
        assert job["state"] == "unacked"
        assert job["ack_t"] is None

    def test_retry_counts_attempts_and_uses_last_claim(self):
        events = [
            claim("A", "w-dead", TA, 100.0),
            claim("A", "w1", TA, 110.0),
            ack("A", "w1", TA, 112.0),
        ]
        [job] = drain_timeline(events)["jobs"]
        assert job["attempts"] == 2
        assert job["wall_s"] == pytest.approx(2.0)
        assert job["owner"] == "w1"

    def test_snapshot_and_merge_events_ignored(self):
        events = two_worker_drain() + [
            ev("snapshot", "registry", 200.0),
            ev("merge", "manifest", 200.0),
        ]
        drain = drain_timeline(events)["drain"]
        assert drain["events"] == len(two_worker_drain())
        assert drain["orphan_spans"] == 0


class TestMergedPhaseQuantiles:
    def test_count_weighted_merge_across_pids(self):
        stats = drain_timeline(two_worker_drain())["phases"]["arrivals"]
        assert stats["count"] == 3
        assert stats["total_s"] == pytest.approx(6.0)
        assert stats["mean_s"] == pytest.approx(2.0)
        assert stats["max_s"] == pytest.approx(3.0)
        # pid 11 p50 = 2.0 (weight 2), pid 22 p50 = 2.0 (weight 1).
        assert stats["p50_s"] == pytest.approx(2.0)


class TestFormatting:
    def test_human_table_smoke(self):
        text = format_timeline(drain_timeline(two_worker_drain()))
        assert "worker lanes" in text
        assert "w1" in text and "w2" in text
        assert "straggler w1" in text
        assert "arrivals" in text

    def test_empty_stream_renders(self):
        text = format_timeline(drain_timeline([]))
        assert "jobs 0" in text
