"""Tests for the process-local registry and its enable/disable plumbing."""

from __future__ import annotations

import math

import pytest

from repro.telemetry.events import read_events
from repro.telemetry.registry import (
    TELEMETRY_DIR_ENV,
    Telemetry,
    configure_telemetry,
    get_telemetry,
    telemetry_session,
)


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Leave every test with telemetry disabled and unresolved."""
    monkeypatch.delenv(TELEMETRY_DIR_ENV, raising=False)
    configure_telemetry(enabled=False)
    yield
    configure_telemetry(enabled=False)


class TestActivation:
    def test_disabled_by_default(self):
        assert get_telemetry() is None

    def test_environment_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TELEMETRY_DIR_ENV, str(tmp_path))
        import repro.telemetry.registry as registry

        monkeypatch.setattr(registry, "_resolved", False)
        telemetry = get_telemetry()
        assert telemetry is not None
        assert telemetry.events_dir == tmp_path

    def test_configure_beats_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TELEMETRY_DIR_ENV, str(tmp_path))
        configure_telemetry(enabled=False)
        assert get_telemetry() is None

    def test_session_scopes_and_restores(self):
        assert get_telemetry() is None
        with telemetry_session() as telemetry:
            assert get_telemetry() is telemetry
            assert telemetry.events_dir is None
        assert get_telemetry() is None


class TestMetrics:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.count("store.hits")
        telemetry.count("store.hits", 4)
        assert telemetry.counters["store.hits"] == 5

    def test_gauges_keep_last_value(self):
        telemetry = Telemetry()
        telemetry.gauge("queue.depth", 10)
        telemetry.gauge("queue.depth", 3)
        assert telemetry.gauges["queue.depth"] == 3.0

    def test_timer_snapshot(self):
        telemetry = Telemetry()
        for seconds in (0.1, 0.2, 0.3):
            telemetry.observe("engine.dispatch_s", seconds)
        snapshot = telemetry.timers["engine.dispatch_s"].snapshot()
        assert snapshot["count"] == 3
        assert snapshot["total_s"] == pytest.approx(0.6)
        assert snapshot["mean_s"] == pytest.approx(0.2)
        assert snapshot["min_s"] == 0.1
        assert snapshot["max_s"] == 0.3
        assert snapshot["p50_s"] == 0.2

    def test_empty_timer_snapshot_has_no_nans_except_quantiles(self):
        stats = Telemetry()
        stats.observe("t", 1.0)
        empty = type(stats.timers["t"])()
        snapshot = empty.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min_s"] == 0.0
        assert math.isnan(snapshot["p99_s"])


class TestSpans:
    def test_nesting_records_parents(self):
        telemetry = Telemetry()
        with telemetry.span("run", "sqlb") as run_id:
            with telemetry.span("phase", "scoring"):
                telemetry.event("queue", "claim")
        by_name = {event["name"]: event for event in telemetry.events}
        assert by_name["claim"]["parent"] == by_name["scoring"]["id"]
        assert by_name["scoring"]["parent"] == run_id
        assert by_name["sqlb"]["parent"] is None

    def test_phase_seconds_sums_by_name(self):
        telemetry = Telemetry()
        telemetry.event("phase", "scoring", duration_s=0.5)
        telemetry.event("phase", "scoring", duration_s=0.25)
        telemetry.event("phase", "ranking", duration_s=1.0)
        telemetry.event("queue", "claim", duration_s=9.0)  # not a phase
        assert telemetry.phase_seconds() == {
            "scoring": 0.75,
            "ranking": 1.0,
        }


class TestFlush:
    def test_in_memory_flush_is_a_noop(self):
        assert Telemetry().flush() is None

    def test_flush_round_trips_with_trailing_snapshot(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        telemetry.count("executor.jobs")
        telemetry.event("queue", "claim", attrs={"id": "j1"})
        path = telemetry.flush()
        events = read_events(path)
        assert [event["kind"] for event in events] == ["queue", "snapshot"]
        assert events[-1]["attrs"]["counters"] == {"executor.jobs": 1}

    def test_repeated_flush_replaces_not_appends(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        telemetry.event("queue", "claim")
        telemetry.flush()
        telemetry.event("queue", "ack")
        path = telemetry.flush()
        kinds = [event["kind"] for event in read_events(path)]
        assert kinds == ["queue", "queue", "snapshot"]

    def test_distinct_instances_use_distinct_files(self, tmp_path):
        first, second = Telemetry(tmp_path), Telemetry(tmp_path)
        first.event("queue", "claim")
        second.event("queue", "ack")
        assert first.flush() != second.flush()
        assert len(list(tmp_path.glob("events-*.jsonl"))) == 2
