"""Opt-in per-job profiling: off by default, per-job dumps, hotspots."""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.experiments.executor import ExperimentExecutor, SimulationJob
from repro.simulation.config import scaled_config
from repro.telemetry import profiling
from repro.telemetry.profiling import (
    PROFILE_DIR_ENV,
    active_profile_dir,
    collect_hotspots,
    format_hotspots,
    profile_job,
)


def _fingerprint(result) -> str:
    """Bit-identity fingerprint (same shape as test_bit_identity's)."""
    digest = hashlib.sha256()
    digest.update(result.times().tobytes())
    for name in sorted(result.collector.names):
        digest.update(name.encode())
        digest.update(result.series(name).tobytes())
    return digest.hexdigest()


@pytest.fixture(autouse=True)
def clean_profile_env(monkeypatch):
    monkeypatch.delenv(PROFILE_DIR_ENV, raising=False)
    # Drop the pid cache so each test re-resolves from its own env.
    monkeypatch.setattr(profiling, "_resolved_pid", None)
    monkeypatch.setattr(profiling, "_resolved_dir", None)


class TestActivation:
    def test_off_by_default(self):
        assert active_profile_dir() is None

    def test_env_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(PROFILE_DIR_ENV, str(tmp_path))
        assert active_profile_dir() == tmp_path

    def test_blank_env_stays_off(self, monkeypatch):
        monkeypatch.setenv(PROFILE_DIR_ENV, "  ")
        assert active_profile_dir() is None

    def test_disabled_context_touches_no_files(self, tmp_path):
        with profile_job(None):
            pass
        assert list(tmp_path.iterdir()) == []


class TestProfileJob:
    def test_one_dump_per_job_atomic(self, tmp_path):
        for _ in range(2):
            with profile_job(tmp_path):
                sum(range(1000))
        dumps = sorted(tmp_path.glob("profile-*.pstats"))
        assert len(dumps) == 2
        # No dot-temp litter once the context exits cleanly.
        assert not [p for p in tmp_path.iterdir() if p.name.startswith(".")]

    def test_dump_survives_job_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with profile_job(tmp_path):
                raise RuntimeError("job failed")
        assert len(list(tmp_path.glob("profile-*.pstats"))) == 1


class TestHotspots:
    def test_aggregates_all_dumps(self, tmp_path):
        for _ in range(3):
            with profile_job(tmp_path):
                sorted(range(500))
        report = collect_hotspots(tmp_path, top=5)
        assert report["jobs"] == 3
        assert report["calls"] > 0
        assert len(report["rows"]) <= 5
        assert report["rows"] == sorted(
            report["rows"],
            key=lambda row: (-row["cumtime_s"], row["function"]),
        )
        text = format_hotspots(report)
        assert "jobs 3" in text

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_hotspots(tmp_path)


class TestExecutorIntegration:
    def test_executed_job_dumps_profile(self, monkeypatch, tmp_path):
        monkeypatch.setenv(PROFILE_DIR_ENV, str(tmp_path / "prof"))
        executor = ExperimentExecutor(workers=1, store=None)
        config = scaled_config(duration=30.0)
        executor.run([SimulationJob(config=config, method="sqlb", seed=1)])
        dumps = list((tmp_path / "prof").glob("profile-*.pstats"))
        assert len(dumps) == 1
        report = collect_hotspots(tmp_path / "prof", top=30)
        assert any(
            "run_simulation" in row["function"] for row in report["rows"]
        )

    def test_profiling_does_not_change_results(self, monkeypatch, tmp_path):
        config = scaled_config(duration=30.0)
        job = SimulationJob(config=config, method="sqlb", seed=1)
        executor = ExperimentExecutor(workers=1, store=None)
        [plain] = executor.run([job])
        monkeypatch.setenv(PROFILE_DIR_ENV, str(tmp_path))
        profiling._resolved_pid = None
        [profiled] = executor.run([job])
        assert _fingerprint(profiled) == _fingerprint(plain)
        monkeypatch.delenv(PROFILE_DIR_ENV)
        profiling._resolved_pid = None


class TestEnvCleanupGuard:
    def test_fixture_restored_process_state(self):
        # Regression guard: the autouse fixture must leave the module
        # globals consistent for later test files in the same process.
        assert os.environ.get(PROFILE_DIR_ENV) is None
        assert active_profile_dir() is None
