"""Tests for digest-stamped JSONL events: round-trip and refusal."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    TelemetryReadError,
    atomic_write_bytes,
    encode_event,
    read_events,
    read_events_dir,
    verify_event,
)


def sample_event(**overrides) -> dict:
    event = {
        "v": EVENT_SCHEMA_VERSION,
        "kind": "phase",
        "name": "scoring",
        "id": 3,
        "parent": 1,
        "pid": 1234,
        "t_wall": 1000.0,
        "dur_s": 0.25,
        "attrs": {"method": "sqlb"},
    }
    event.update(overrides)
    return event


class TestEncodeVerify:
    def test_round_trip(self):
        line = encode_event(sample_event())
        decoded = json.loads(line)
        assert verify_event(decoded)
        assert decoded["name"] == "scoring"
        assert decoded["attrs"] == {"method": "sqlb"}

    def test_stamp_is_deterministic(self):
        assert encode_event(sample_event()) == encode_event(sample_event())

    def test_prior_stamp_is_ignored_when_restamping(self):
        stamped = json.loads(encode_event(sample_event()))
        assert encode_event(stamped) == encode_event(sample_event())

    def test_any_field_change_breaks_verification(self):
        event = json.loads(encode_event(sample_event()))
        event["dur_s"] = 99.0
        assert not verify_event(event)

    def test_missing_stamp_fails_verification(self):
        assert not verify_event(sample_event())


class TestReadEvents:
    def write(self, path, lines):
        atomic_write_bytes(path, ("\n".join(lines) + "\n").encode())

    def test_reads_every_line(self, tmp_path):
        path = tmp_path / "events-h-1-0.jsonl"
        self.write(
            path,
            [
                encode_event(sample_event(id=1, parent=None)),
                encode_event(sample_event(id=2)),
            ],
        )
        events = read_events(path)
        assert [event["id"] for event in events] == [1, 2]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events-h-1-0.jsonl"
        self.write(path, [encode_event(sample_event()), ""])
        assert len(read_events(path)) == 1

    def test_torn_line_refuses_whole_file(self, tmp_path):
        path = tmp_path / "events-h-1-0.jsonl"
        line = encode_event(sample_event())
        # A crash mid-write leaves a truncated final line.
        self.write(path, [line, line[: len(line) // 2]])
        with pytest.raises(TelemetryReadError, match="torn"):
            read_events(path)

    def test_tampered_line_refuses_whole_file(self, tmp_path):
        path = tmp_path / "events-h-1-0.jsonl"
        event = json.loads(encode_event(sample_event()))
        event["dur_s"] = 1e9  # edited after stamping
        self.write(path, [json.dumps(event)])
        with pytest.raises(TelemetryReadError, match="digest mismatch"):
            read_events(path)

    def test_wrong_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "events-h-1-0.jsonl"
        self.write(path, [encode_event(sample_event(v=99))])
        with pytest.raises(TelemetryReadError, match="schema"):
            read_events(path)

    def test_non_object_line_is_refused(self, tmp_path):
        path = tmp_path / "events-h-1-0.jsonl"
        self.write(path, ['["not", "an", "object"]'])
        with pytest.raises(TelemetryReadError):
            read_events(path)


class TestReadEventsDir:
    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(TelemetryReadError, match="no telemetry"):
            read_events_dir(tmp_path / "absent")

    def test_merges_files_in_sorted_order(self, tmp_path):
        for token, span in (("b", 2), ("a", 1)):
            atomic_write_bytes(
                tmp_path / f"events-h-1-{token}.jsonl",
                (encode_event(sample_event(id=span)) + "\n").encode(),
            )
        events = read_events_dir(tmp_path)
        assert [event["id"] for event in events] == [1, 2]

    def test_ignores_unrelated_and_temp_files(self, tmp_path):
        atomic_write_bytes(
            tmp_path / "events-h-1-0.jsonl",
            (encode_event(sample_event()) + "\n").encode(),
        )
        (tmp_path / ".events-h-9-9.jsonl.tmp123").write_text("garbage")
        (tmp_path / "notes.txt").write_text("not events")
        assert len(read_events_dir(tmp_path)) == 1
