"""Telemetry must never perturb simulation numerics.

The registry's core invariant: an instrumented run draws nothing from
any RNG stream and reorders no arithmetic, so enabling telemetry leaves
every sampled series bit-identical — to a disabled run *and* to the
frozen pre-telemetry golden fingerprints.  A single extra RNG request
anywhere in the hot path would shift every subsequent draw and trip
these within a handful of samples.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.simulation.config import DepartureRules, WorkloadSpec, tiny_config
from repro.simulation.engine import run_simulation
from repro.telemetry.registry import telemetry_session

#: Frozen in tests/experiments/test_golden.py before telemetry existed;
#: duplicated (not imported — test packages are path-independent) so an
#: accidental golden edit cannot silently relax this file too.
PRE_TELEMETRY_SHA256 = {
    ("captive", "sqlb"):
        "ed01bf370eb314688efd21fdc17658306e149634f040aadce6794acd972352f4",
    ("autonomous", "sqlb"):
        "668b18ba87b72be7179d34fce2d2fefaf9507e7deeaa07ca937356f1e3ccea6b",
}


def _fingerprint(result) -> str:
    digest = hashlib.sha256()
    digest.update(result.times().tobytes())
    for name in sorted(result.collector.names):
        digest.update(name.encode())
        digest.update(result.series(name).tobytes())
    return digest.hexdigest()


def _config(label):
    if label == "captive":
        return tiny_config(duration=60.0)
    return tiny_config(
        duration=120.0, workload=WorkloadSpec.fixed(1.0)
    ).with_departures(DepartureRules.autonomous(True))


@pytest.mark.parametrize("label", ["captive", "autonomous"])
@pytest.mark.parametrize("method", ["sqlb", "capacity"])
def test_enabled_and_disabled_runs_are_bit_identical(
    label, method, tmp_path
):
    config = _config(label)
    disabled = run_simulation(config, method, seed=5)
    with telemetry_session(tmp_path) as telemetry:
        enabled = run_simulation(config, method, seed=5)
        # The instrumentation genuinely ran on the enabled side.
        assert telemetry.counters["engine.queries_issued"] == (
            enabled.queries_issued
        )
        assert any(
            event["kind"] == "phase" for event in telemetry.events
        )
    assert _fingerprint(enabled) == _fingerprint(disabled)


@pytest.mark.parametrize(
    ("label", "method"), sorted(PRE_TELEMETRY_SHA256)
)
def test_enabled_run_matches_pre_telemetry_goldens(label, method, tmp_path):
    with telemetry_session(tmp_path):
        result = run_simulation(_config(label), method, seed=5)
    assert _fingerprint(result) == PRE_TELEMETRY_SHA256[(label, method)]
