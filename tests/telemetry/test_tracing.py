"""Trace-context propagation: deterministic ids, scoped injection."""

from __future__ import annotations

import pytest

from repro.telemetry.registry import telemetry_session
from repro.telemetry.tracing import (
    current_trace_id,
    mint_trace_id,
    trace_scope,
)


class TestMintTraceId:
    def test_deterministic_and_16_hex(self):
        first = mint_trace_id("queue", "abc123", "job-1")
        second = mint_trace_id("queue", "abc123", "job-1")
        assert first == second
        assert len(first) == 16
        int(first, 16)  # hex

    def test_distinct_parts_distinct_ids(self):
        assert mint_trace_id("queue", "a", "j") != mint_trace_id(
            "queue", "a", "k"
        )
        # Separator-injection resistance: ("ab", "c") != ("a", "bc").
        assert mint_trace_id("ab", "c") != mint_trace_id("a", "bc")

    def test_non_string_parts_are_stringified(self):
        assert mint_trace_id("sweep", "h", 7) == mint_trace_id(
            "sweep", "h", "7"
        )

    def test_no_parts_raises(self):
        with pytest.raises(ValueError):
            mint_trace_id()


class TestTraceScope:
    def test_default_is_none(self):
        assert current_trace_id() is None

    def test_scope_installs_and_restores(self):
        with trace_scope("feedfacefeedface"):
            assert current_trace_id() == "feedfacefeedface"
        assert current_trace_id() is None

    def test_none_scope_is_passthrough(self):
        with trace_scope("aaaabbbbccccdddd"):
            with trace_scope(None):
                # None must not clear an enclosing scope: a traceless
                # sub-job inherits its parent's correlation.
                assert current_trace_id() == "aaaabbbbccccdddd"
            assert current_trace_id() == "aaaabbbbccccdddd"

    def test_scopes_nest_lifo(self):
        with trace_scope("1111111111111111"):
            with trace_scope("2222222222222222"):
                assert current_trace_id() == "2222222222222222"
            assert current_trace_id() == "1111111111111111"

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace_scope("2222222222222222"):
                raise RuntimeError("boom")
        assert current_trace_id() is None


class TestRegistryInjection:
    def test_events_under_scope_carry_trace_attr(self):
        with telemetry_session() as telemetry:
            with trace_scope("feedfacefeedface"):
                telemetry.event("queue", "note")
                with telemetry.span("phase", "arrivals"):
                    pass
            telemetry.event("queue", "outside")
        by_name = {event["name"]: event for event in telemetry.events}
        assert by_name["note"]["attrs"]["trace"] == "feedfacefeedface"
        assert by_name["arrivals"]["attrs"]["trace"] == "feedfacefeedface"
        assert "trace" not in by_name["outside"]["attrs"]

    def test_explicit_producer_trace_wins_over_scope(self):
        with telemetry_session() as telemetry:
            with trace_scope("ffffffffffffffff"):
                telemetry.event(
                    "queue", "ack", attrs={"trace": "0000000000000000"}
                )
        [event] = telemetry.events
        assert event["attrs"]["trace"] == "0000000000000000"
