"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main, resolve_seeds
from repro.experiments.executor import set_default_executor
from repro.experiments.harness import DEFAULT_SEEDS, PAPER_SEEDS


@pytest.fixture(autouse=True)
def _reset_default_executor():
    """CLI commands install default executors; never leak them."""
    yield
    set_default_executor(None)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "sqlb"
        assert args.workload == 0.8
        assert not args.autonomous

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "oracle"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9z"])

    def test_figure_seeds_accept_paper_sugar(self):
        args = build_parser().parse_args(["figure", "4a", "--seeds", "paper"])
        assert resolve_seeds(args.seeds) == PAPER_SEEDS
        args = build_parser().parse_args(
            ["figure", "4a", "--seeds", "7", "default"]
        )
        assert resolve_seeds(args.seeds) == (7,) + DEFAULT_SEEDS

    def test_seed_sugar_deduplicates_preserving_order(self):
        args = build_parser().parse_args(
            ["figure", "4a", "--seeds", "11", "paper"]
        )
        assert resolve_seeds(args.seeds) == PAPER_SEEDS

    def test_rejects_garbage_seeds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "4a", "--seeds", "many"])

    def test_sweep_run_defaults_and_shard(self):
        args = build_parser().parse_args(["sweep", "run", "--shard", "2/4"])
        assert args.sweep_command == "run"
        assert args.shard == (2, 4)
        assert args.scale == "scaled"
        assert "captive_ramp" in args.scenarios
        assert resolve_seeds(args.seeds) == DEFAULT_SEEDS

    @pytest.mark.parametrize("shard", ["4/4", "-1/2", "1", "a/b", "1/0"])
    def test_rejects_bad_shards(self, shard):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "run", "--shard", shard])

    def test_sweep_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "run", "--scenarios", "warp_drive"]
            )

    def test_sweep_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])


class TestCommands:
    def test_methods_lists_paper_methods(self, capsys):
        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for name in ("sqlb (paper)", "capacity (paper)", "mariposa (paper)"):
            assert name in output
        assert "knbest" in output

    def test_run_prints_summary(self, capsys):
        code = main(
            [
                "run",
                "--method",
                "capacity",
                "--duration",
                "60",
                "--workload",
                "0.5",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "method: capacity" in output
        assert "response time" in output

    def test_run_autonomous_reports_departures(self, capsys):
        main(
            [
                "run",
                "--duration",
                "60",
                "--autonomous",
                "--method",
                "sqlb",
            ]
        )
        assert "departures:" in capsys.readouterr().out


SWEEP_FLAGS = [
    "--scenarios",
    "captive_fixed_80",
    "--methods",
    "sqlb",
    "capacity",
    "--seeds",
    "1",
    "--scale",
    "tiny",
    "--name",
    "cli-e2e",
]


class TestSweepCommands:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_sweep_run_requires_a_store(self):
        with pytest.raises(SystemExit, match="cache-dir"):
            main(["sweep", "run", *SWEEP_FLAGS, "--no-cache"])

    def test_sweep_status_requires_a_store(self):
        with pytest.raises(SystemExit, match="cache-dir"):
            main(["sweep", "status"])
        with pytest.raises(SystemExit, match="no-cache"):
            main(["sweep", "status", "--no-cache"])

    def test_sharded_run_matches_unsharded_report(self, tmp_path, capsys):
        """Acceptance: shard 0/2 + shard 1/2 into one cache dir, then
        report — identical to an unsharded run's report, and a warm
        re-run performs zero new simulations."""
        sharded = str(tmp_path / "sharded")
        reference = str(tmp_path / "reference")

        out0 = self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--shard", "0/2",
            "--cache-dir", sharded,
        )
        assert "simulated: 1" in out0
        out1 = self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--shard", "1/2",
            "--cache-dir", sharded,
        )
        assert "simulated: 1" in out1

        sharded_report = self._run(
            capsys, "sweep", "report", *SWEEP_FLAGS, "--cache-dir", sharded
        )
        self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--cache-dir", reference,
        )
        reference_report = self._run(
            capsys, "sweep", "report", *SWEEP_FLAGS, "--cache-dir", reference
        )
        assert sharded_report == reference_report
        assert "cli-e2e" in sharded_report

        # Warm re-run: the manifest records every job as a store hit.
        warm = self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--cache-dir", sharded,
        )
        assert "simulated: 0" in warm
        assert "store hits: 2" in warm
        assert "zero new simulations" in warm

        status = self._run(
            capsys, "sweep", "status", "--cache-dir", sharded
        )
        assert "cli-e2e" in status
        # Shards 0/2, 1/2 and the warm 0/1 run each left a manifest.
        assert len(status.strip().splitlines()) == 1 + 3

    def test_sweep_merge_unions_two_stores(self, tmp_path, capsys):
        machine_a = str(tmp_path / "a")
        machine_b = str(tmp_path / "b")
        merged = str(tmp_path / "merged")
        self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--shard", "0/2",
            "--cache-dir", machine_a,
        )
        self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--shard", "1/2",
            "--cache-dir", machine_b,
        )
        out = self._run(
            capsys,
            "sweep", "merge", machine_a, machine_b, "--into", merged,
        )
        assert "2 entries copied" in out
        assert "2 manifests copied" in out

        # The merged store satisfies the warm-run acceptance check.
        warm = self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--cache-dir", merged,
        )
        assert "simulated: 0" in warm

    def test_sweep_status_reports_empty_store(self, tmp_path, capsys):
        out = self._run(
            capsys, "sweep", "status", "--cache-dir", str(tmp_path)
        )
        assert "no sweep manifests" in out
