"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.audit.recorder import AUDIT_DIR_ENV, configure_audit
from repro.cli import build_parser, main, resolve_seeds
from repro.experiments.executor import set_default_executor
from repro.experiments.harness import DEFAULT_SEEDS, PAPER_SEEDS
from repro.telemetry.registry import TELEMETRY_DIR_ENV, configure_telemetry


@pytest.fixture(autouse=True)
def _reset_default_executor(monkeypatch):
    """CLI commands install default executors (and, via --telemetry /
    --audit, process-wide registries plus their environment knobs);
    never leak any of them into the next test."""
    monkeypatch.delenv(TELEMETRY_DIR_ENV, raising=False)
    monkeypatch.delenv(AUDIT_DIR_ENV, raising=False)
    yield
    set_default_executor(None)
    configure_telemetry(enabled=False)
    configure_audit(None)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "sqlb"
        assert args.workload == 0.8
        assert not args.autonomous

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "oracle"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9z"])

    def test_figure_seeds_accept_paper_sugar(self):
        args = build_parser().parse_args(["figure", "4a", "--seeds", "paper"])
        assert resolve_seeds(args.seeds) == PAPER_SEEDS
        args = build_parser().parse_args(
            ["figure", "4a", "--seeds", "7", "default"]
        )
        assert resolve_seeds(args.seeds) == (7,) + DEFAULT_SEEDS

    def test_seed_sugar_deduplicates_preserving_order(self):
        args = build_parser().parse_args(
            ["figure", "4a", "--seeds", "11", "paper"]
        )
        assert resolve_seeds(args.seeds) == PAPER_SEEDS

    def test_rejects_garbage_seeds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "4a", "--seeds", "many"])

    def test_sweep_run_defaults_and_shard(self):
        args = build_parser().parse_args(["sweep", "run", "--shard", "2/4"])
        assert args.sweep_command == "run"
        assert args.shard == (2, 4)
        assert args.scale == "scaled"
        assert "captive_ramp" in args.scenarios
        assert resolve_seeds(args.seeds) == DEFAULT_SEEDS

    @pytest.mark.parametrize("shard", ["4/4", "-1/2", "1", "a/b", "1/0"])
    def test_rejects_bad_shards(self, shard):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "run", "--shard", shard])

    def test_sweep_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "run", "--scenarios", "warp_drive"]
            )

    def test_sweep_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])


class TestCommands:
    def test_methods_lists_paper_methods(self, capsys):
        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for name in ("sqlb (paper)", "capacity (paper)", "mariposa (paper)"):
            assert name in output
        assert "knbest" in output

    def test_run_prints_summary(self, capsys):
        code = main(
            [
                "run",
                "--method",
                "capacity",
                "--duration",
                "60",
                "--workload",
                "0.5",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "method: capacity" in output
        assert "response time" in output

    def test_run_autonomous_reports_departures(self, capsys):
        main(
            [
                "run",
                "--duration",
                "60",
                "--autonomous",
                "--method",
                "sqlb",
            ]
        )
        assert "departures:" in capsys.readouterr().out


SWEEP_FLAGS = [
    "--scenarios",
    "captive_fixed_80",
    "--methods",
    "sqlb",
    "capacity",
    "--seeds",
    "1",
    "--scale",
    "tiny",
    "--name",
    "cli-e2e",
]


class TestSweepCommands:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_sweep_run_requires_a_store(self):
        with pytest.raises(SystemExit, match="cache-dir"):
            main(["sweep", "run", *SWEEP_FLAGS, "--no-cache"])

    def test_sweep_status_requires_a_store(self):
        with pytest.raises(SystemExit, match="cache-dir"):
            main(["sweep", "status"])
        with pytest.raises(SystemExit, match="no-cache"):
            main(["sweep", "status", "--no-cache"])

    def test_sharded_run_matches_unsharded_report(self, tmp_path, capsys):
        """Acceptance: shard 0/2 + shard 1/2 into one cache dir, then
        report — identical to an unsharded run's report, and a warm
        re-run performs zero new simulations."""
        sharded = str(tmp_path / "sharded")
        reference = str(tmp_path / "reference")

        out0 = self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--shard", "0/2",
            "--cache-dir", sharded,
        )
        assert "simulated: 1" in out0
        out1 = self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--shard", "1/2",
            "--cache-dir", sharded,
        )
        assert "simulated: 1" in out1

        sharded_report = self._run(
            capsys, "sweep", "report", *SWEEP_FLAGS, "--cache-dir", sharded
        )
        self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--cache-dir", reference,
        )
        reference_report = self._run(
            capsys, "sweep", "report", *SWEEP_FLAGS, "--cache-dir", reference
        )
        assert sharded_report == reference_report
        assert "cli-e2e" in sharded_report

        # Warm re-run: the manifest records every job as a store hit.
        warm = self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--cache-dir", sharded,
        )
        assert "simulated: 0" in warm
        assert "store hits: 2" in warm
        assert "zero new simulations" in warm

        status = self._run(
            capsys, "sweep", "status", "--cache-dir", sharded
        )
        assert "cli-e2e" in status
        # Shards 0/2, 1/2 and the warm 0/1 run each left a manifest.
        assert len(status.strip().splitlines()) == 1 + 3

    def test_sweep_merge_unions_two_stores(self, tmp_path, capsys):
        machine_a = str(tmp_path / "a")
        machine_b = str(tmp_path / "b")
        merged = str(tmp_path / "merged")
        self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--shard", "0/2",
            "--cache-dir", machine_a,
        )
        self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--shard", "1/2",
            "--cache-dir", machine_b,
        )
        out = self._run(
            capsys,
            "sweep", "merge", machine_a, machine_b, "--into", merged,
        )
        assert "2 entries copied" in out
        assert "2 manifests copied" in out

        # The merged store satisfies the warm-run acceptance check.
        warm = self._run(
            capsys,
            "sweep", "run", *SWEEP_FLAGS, "--cache-dir", merged,
        )
        assert "simulated: 0" in warm

    def test_sweep_status_reports_empty_store(self, tmp_path, capsys):
        out = self._run(
            capsys, "sweep", "status", "--cache-dir", str(tmp_path)
        )
        assert "no sweep manifests" in out


class TestTraceCommands:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_record_requires_a_store(self, tmp_path):
        with pytest.raises(SystemExit, match="result store"):
            main([
                "trace", "record", "--out", str(tmp_path / "t.json"),
                "--scenario", "captive_fixed_80", "--no-cache",
            ])

    def test_record_replay_compare_round_trip(self, tmp_path, capsys):
        """Acceptance: record → replay two methods (recording method
        byte-identical) → paired compare across the two stores."""
        trace = str(tmp_path / "trace.json")
        store_a = str(tmp_path / "a")
        store_b = str(tmp_path / "b")

        recorded = self._run(
            capsys,
            "trace", "record", "--out", trace,
            "--scenario", "captive_fixed_80", "--scale", "tiny",
            "--method", "sqlb", "--seed", "3",
            "--cache-dir", store_a,
        )
        assert f"trace written to {trace}" in recorded
        assert "issued" in recorded

        replayed = self._run(
            capsys,
            "trace", "replay", "--trace", trace,
            "--methods", "sqlb", "capacity",
            "--cache-dir", store_b, "--workers", "1",
        )
        assert "byte-identical to the recording run" in replayed
        assert "capacity" in replayed

        # The replay manifest lets the analysis layer pair the stores
        # on the shared (scenario, recording-method) cell.
        compared = self._run(
            capsys, "analyze", "compare", store_a, store_b
        )
        assert "captive_fixed_80" in compared
        assert "sqlb" in compared

        # A warm re-replay performs zero new simulations.
        warm = self._run(
            capsys,
            "trace", "replay", "--trace", trace,
            "--methods", "sqlb", "capacity",
            "--cache-dir", store_b, "--workers", "1",
        )
        assert "simulated" not in warm.replace("store hit", "")
        assert warm.count("store hit") == 2

    def test_replay_against_wrong_scenario_fails_loudly(
        self, tmp_path, capsys
    ):
        trace = str(tmp_path / "trace.json")
        self._run(
            capsys,
            "trace", "record", "--out", trace,
            "--scenario", "captive_fixed_80", "--scale", "tiny",
            "--method", "sqlb", "--seed", "3",
            "--cache-dir", str(tmp_path / "a"),
        )
        with pytest.raises(SystemExit, match="did not reproduce"):
            main([
                "trace", "replay", "--trace", trace,
                "--scenario", "autonomous_full",
                "--methods", "sqlb",
                "--cache-dir", str(tmp_path / "b"), "--workers", "1",
            ])


class TestQueueParser:
    def test_init_defaults(self):
        args = build_parser().parse_args(
            ["queue", "init", "--queue-dir", "q"]
        )
        assert args.queue_command == "init"
        assert not args.adaptive
        assert args.ci_threshold == 0.5
        assert args.max_seeds == len(PAPER_SEEDS)
        assert args.seed_batch == 2

    def test_work_defaults(self):
        args = build_parser().parse_args(
            ["queue", "work", "--queue-dir", "q"]
        )
        assert args.ttl == 60.0
        assert args.poll == 0.5
        assert args.max_jobs is None
        assert not args.wait
        assert args.owner is None

    def test_queue_dir_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["queue", "work"])

    @pytest.mark.parametrize(
        "flags",
        [
            ["queue", "work", "--queue-dir", "q", "--ttl", "0"],
            ["queue", "work", "--queue-dir", "q", "--ttl", "-5"],
            ["queue", "work", "--queue-dir", "q", "--max-jobs", "0"],
            ["queue", "init", "--queue-dir", "q", "--ci-threshold", "-1"],
            ["queue", "init", "--queue-dir", "q", "--seed-batch", "0"],
        ],
    )
    def test_rejects_non_positive_knobs(self, flags):
        with pytest.raises(SystemExit):
            build_parser().parse_args(flags)

    def test_sweep_status_json_flag(self):
        args = build_parser().parse_args(["sweep", "status", "--json"])
        assert args.json


QUEUE_SPEC_FLAGS = [
    "--scenarios",
    "captive_fixed_80",
    "--methods",
    "sqlb",
    "capacity",
    "--seeds",
    "1",
    "--scale",
    "tiny",
    "--name",
    "queue-e2e",
]


class TestQueueCommands:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_work_requires_a_store(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        with pytest.raises(SystemExit, match="cache-dir"):
            main(
                ["queue", "work", "--queue-dir", queue_dir, "--no-cache"]
            )

    def test_commands_reject_a_missing_queue(self, tmp_path):
        for command in (
            ["queue", "status", "--queue-dir", str(tmp_path / "none")],
            ["queue", "report", "--queue-dir", str(tmp_path / "none"),
             "--cache-dir", str(tmp_path / "store")],
        ):
            with pytest.raises(SystemExit, match="queue init"):
                main(command)

    def test_report_requires_a_store(self, tmp_path):
        with pytest.raises(SystemExit, match="no-cache"):
            main(
                ["queue", "report", "--queue-dir", str(tmp_path / "q"),
                 "--no-cache"]
            )
        with pytest.raises(SystemExit, match="cache-dir"):
            main(
                ["queue", "report", "--queue-dir", str(tmp_path / "q")]
            )

    def test_init_refuses_a_second_init(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        with pytest.raises(SystemExit, match="already initialised"):
            main(
                ["queue", "init", "--queue-dir", queue_dir,
                 *QUEUE_SPEC_FLAGS]
            )

    @pytest.mark.parametrize("max_seeds", ["2", "3"])
    def test_adaptive_max_seeds_needs_headroom(self, tmp_path, max_seeds):
        """Below *or equal to* the initial seed count, adaptive seeding
        could never add a seed — init must refuse, not no-op."""
        with pytest.raises(SystemExit, match="headroom"):
            main(
                ["queue", "init", "--queue-dir", str(tmp_path / "q"),
                 "--scenarios", "captive_fixed_80", "--methods", "sqlb",
                 "--seeds", "1", "2", "3", "--scale", "tiny",
                 "--adaptive", "--max-seeds", max_seeds]
            )

    def test_init_work_status_report_round_trip(self, tmp_path, capsys):
        """End-to-end: init, drain with two sequential bounded workers,
        JSON status, report — and the queue-produced store satisfies the
        static sweep report byte-identically."""
        import json as jsonlib

        queue_dir = str(tmp_path / "q")
        store = str(tmp_path / "store")

        out = self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        assert "jobs enqueued: 2" in out

        first = self._run(
            capsys, "queue", "work", "--queue-dir", queue_dir,
            "--cache-dir", store, "--max-jobs", "1", "--owner", "one",
        )
        assert "processed: 1" in first
        second = self._run(
            capsys, "queue", "work", "--queue-dir", queue_dir,
            "--cache-dir", store, "--owner", "two",
        )
        assert "processed: 1" in second

        status = jsonlib.loads(
            self._run(
                capsys, "queue", "status", "--queue-dir", queue_dir,
                "--cache-dir", store, "--json",
            )
        )
        assert status["drained"]
        assert status["counts"]["done"] == 2
        assert sum(m["jobs"] for m in status["manifests"]) == 2

        report = self._run(
            capsys, "queue", "report", "--queue-dir", queue_dir,
            "--cache-dir", store,
        )
        assert "queue-e2e" in report
        assert "captive_fixed_80" in report

        # The store the queue produced answers the static sweep report
        # with zero new simulations and identical bytes.
        queue_sweep_report = self._run(
            capsys, "sweep", "report", *QUEUE_SPEC_FLAGS,
            "--cache-dir", store,
        )
        reference = str(tmp_path / "reference")
        self._run(
            capsys, "sweep", "run", *QUEUE_SPEC_FLAGS,
            "--cache-dir", reference,
        )
        reference_report = self._run(
            capsys, "sweep", "report", *QUEUE_SPEC_FLAGS,
            "--cache-dir", reference,
        )
        assert queue_sweep_report == reference_report

        # sweep status --json over the queue store: the shared parser
        # sees the two worker manifests.
        sweep_status = jsonlib.loads(
            self._run(
                capsys, "sweep", "status", "--cache-dir", store, "--json"
            )
        )
        workers = {m["worker"] for m in sweep_status["manifests"]}
        assert workers == {"one", "two"}


class TestAnalyzeParser:
    def test_series_requires_a_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "series"])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["analyze", "figures"])
        assert args.analyze_command == "figures"
        assert args.formats == ["json", "svg"]
        assert args.only is None

    def test_figures_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "figures", "--formats", "pdf"]
            )

    def test_compare_threshold_syntax(self):
        args = build_parser().parse_args(
            [
                "analyze", "compare", "a", "b",
                "--threshold", "response_time_post_warmup=0.5",
            ]
        )
        assert args.threshold == [("response_time_post_warmup", 0.5)]
        for bad in ("qps=0.5", "response_time_post_warmup", "x=-1"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["analyze", "compare", "a", "b", "--threshold", bad]
                )

    def test_queue_init_accepts_ci_metric(self):
        args = build_parser().parse_args(
            [
                "queue", "init", "--queue-dir", "q", "--adaptive",
                "--ci-metric", "departure_fraction",
            ]
        )
        assert args.ci_metric == "departure_fraction"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "queue", "init", "--queue-dir", "q",
                    "--ci-metric", "wall_clock",
                ]
            )

    def test_queue_work_accepts_expiry_clock(self):
        args = build_parser().parse_args(
            [
                "queue", "work", "--queue-dir", "q",
                "--expiry-clock", "mtime",
            ]
        )
        assert args.expiry_clock == "mtime"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "queue", "work", "--queue-dir", "q",
                    "--expiry-clock", "sundial",
                ]
            )


class TestAnalyzeCommands:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    @pytest.fixture
    def store(self, tmp_path, capsys) -> str:
        store = str(tmp_path / "store")
        self._run(
            capsys, "sweep", "run", *QUEUE_SPEC_FLAGS,
            "--cache-dir", store,
        )
        return store

    def test_analyze_requires_a_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit, match="store"):
            main(["analyze", "series", "--series", "response_time_mean"])
        with pytest.raises(SystemExit, match="no result store"):
            main(
                [
                    "analyze", "figures",
                    "--store", str(tmp_path / "nope"),
                ]
            )

    def test_series_table_and_json(self, store, capsys):
        table = self._run(
            capsys, "analyze", "series", "--store", store,
            "--series", "response_time_mean", "--methods", "sqlb",
        )
        assert "captive_fixed_80 / sqlb / response_time_mean" in table
        import json as jsonlib

        payload = jsonlib.loads(
            self._run(
                capsys, "analyze", "series", "--store", store,
                "--series", "response_time_mean", "--json",
            )
        )
        assert payload["series"] == "response_time_mean"
        assert {cell["method"] for cell in payload["cells"]} == {
            "sqlb", "capacity",
        }

    def test_series_refuses_an_empty_filter(self, store):
        with pytest.raises(SystemExit, match="no matching cells"):
            main(
                [
                    "analyze", "series", "--store", store,
                    "--series", "response_time_mean",
                    "--scenarios", "diurnal",
                ]
            )

    def test_figures_renders_the_catalog(self, store, tmp_path, capsys):
        out = str(tmp_path / "figs")
        output = self._run(
            capsys, "analyze", "figures", "--store", store,
            "--out", out, "--formats", "json",
        )
        assert "rendered 7 file(s)" in output
        from pathlib import Path as PathLib

        assert (PathLib(out) / "response_time.json").is_file()

    def test_queue_report_figures_mid_drain(self, tmp_path, capsys):
        """--figures must work on a partially drained queue."""
        queue_dir = str(tmp_path / "q")
        store = str(tmp_path / "qstore")
        self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        # Drain exactly one of the two jobs: partial by construction.
        self._run(
            capsys, "queue", "work", "--queue-dir", queue_dir,
            "--cache-dir", store, "--max-jobs", "1",
        )
        out = str(tmp_path / "partial-figs")
        report = self._run(
            capsys, "queue", "report", "--queue-dir", queue_dir,
            "--cache-dir", store, "--figures",
            "--figures-out", out, "--formats", "json",
        )
        assert "figures:" in report
        from pathlib import Path as PathLib

        written = sorted(p.name for p in PathLib(out).glob("*.json"))
        # Single-method cells: the delta figure has no comparator and
        # is skipped; the series/departure figures render.
        assert "response_time.json" in written


class TestQueueMaintenanceCli:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_gc_and_retry_round_trip(self, tmp_path, capsys):
        import json as jsonlib
        import os as oslib
        import time as timelib

        queue_dir = str(tmp_path / "q")
        self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        # Plant an old orphaned temp file.
        stale = tmp_path / "q" / "pending" / ".ticket.orphan"
        stale.write_text("{}")
        old = timelib.time() - 7200.0
        oslib.utime(stale, (old, old))

        found = jsonlib.loads(
            self._run(
                capsys, "queue", "gc", "--queue-dir", queue_dir,
                "--no-cache", "--json",
            )
        )
        assert found["temp_files"] == [str(stale)]
        assert found["pruned"] is False

        self._run(
            capsys, "queue", "gc", "--queue-dir", queue_dir,
            "--no-cache", "--prune",
        )
        assert not stale.exists()

        # Park an error, then retry it through the CLI.
        from repro.scheduler import WorkQueue

        queue = WorkQueue(queue_dir)
        lease = queue.claim("cli-worker", 30.0)
        assert queue.fail(lease, "boom", max_attempts=1) == "error"

        listing = self._run(
            capsys, "queue", "retry", "--queue-dir", queue_dir,
            "--list",
        )
        assert lease.job.id in listing
        retried = jsonlib.loads(
            self._run(
                capsys, "queue", "retry", "--queue-dir", queue_dir,
                "--json",
            )
        )
        assert retried["requeued"] == [lease.job.id]
        assert queue.counts().pending == 2  # both cells runnable again


class TestTelemetryCli:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_report_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="no telemetry"):
            main(["telemetry", "report", str(tmp_path / "absent")])

    def test_run_with_telemetry_then_report(self, tmp_path, capsys):
        import json as jsonlib

        events = str(tmp_path / "events")
        self._run(
            capsys, "run", "--duration", "30", "--no-cache",
            "--telemetry", events,
        )
        text = self._run(capsys, "telemetry", "report", events)
        assert "phase breakdown:" in text
        assert "candidate cache" in text
        payload = jsonlib.loads(
            self._run(capsys, "telemetry", "report", events, "--json")
        )
        assert payload["runs"] == 1
        assert payload["cells"] == 1
        phase_names = [row["phase"] for row in payload["phases"]]
        assert phase_names[0] == "arrival"
        assert payload["counters"]["executor.jobs"] == 1

    def test_queue_drain_with_telemetry_then_top(self, tmp_path, capsys):
        import json as jsonlib

        queue_dir = str(tmp_path / "q")
        store = str(tmp_path / "store")
        events = str(tmp_path / "events")
        self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        self._run(
            capsys, "queue", "work", "--queue-dir", queue_dir,
            "--cache-dir", store, "--telemetry", events,
            "--owner", "cli-w",
        )
        report = self._run(capsys, "telemetry", "report", events)
        assert "queue.claim" in report
        assert "queue.ack" in report

        top = self._run(
            capsys, "queue", "top", "--queue-dir", queue_dir, "--once"
        )
        assert "[drained]" in top
        assert "cli-w" in top

        frame = jsonlib.loads(
            self._run(
                capsys, "queue", "top", "--queue-dir", queue_dir, "--json"
            )
        )
        [worker] = frame["status"]["workers"]
        assert worker["retired"]
        assert worker["counters"]["processed"] == 2

        status = jsonlib.loads(
            self._run(
                capsys, "queue", "status", "--queue-dir", queue_dir,
                "--cache-dir", store, "--json",
            )
        )
        assert status["drained"]


class TestReliabilityCommands:
    """CLI surface of the reliability stack: fsck, fleet, store verify."""

    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_fsck_clean_queue_exits_zero(self, tmp_path, capsys):
        import json as jsonlib

        queue_dir = str(tmp_path / "q")
        self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        out = self._run(
            capsys, "queue", "fsck", "--queue-dir", queue_dir,
            "--no-cache",
        )
        assert "clean" in out
        frame = jsonlib.loads(
            self._run(
                capsys, "queue", "fsck", "--queue-dir", queue_dir,
                "--no-cache", "--json",
            )
        )
        assert frame["clean"] is True

    def test_fsck_exits_nonzero_on_unrepaired(self, tmp_path, capsys):
        queue_dir = str(tmp_path / "q")
        self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        # Tear a ticket: detectable, repairable — but without --repair
        # the command must fail loudly.
        from repro.scheduler.queue import WorkQueue

        queue = WorkQueue(tmp_path / "q")
        next(iter(queue.pending_dir.iterdir())).write_text("{torn")
        with pytest.raises(SystemExit) as excinfo:
            main(["queue", "fsck", "--queue-dir", queue_dir, "--no-cache"])
        assert excinfo.value.code == 1
        capsys.readouterr()
        out = self._run(
            capsys, "queue", "fsck", "--queue-dir", queue_dir,
            "--no-cache", "--repair",
        )
        assert "repaired" in out
        # Now clean.
        self._run(
            capsys, "queue", "fsck", "--queue-dir", queue_dir, "--no-cache"
        )

    def test_store_verify_round_trip(self, tmp_path, capsys):
        from repro.experiments.store import ResultStore
        from repro.simulation.config import tiny_config
        from repro.simulation.engine import run_simulation

        store_dir = str(tmp_path / "store")
        ResultStore(store_dir).put(
            run_simulation(tiny_config(duration=40.0), "sqlb", seed=3)
        )
        out = self._run(
            capsys, "store", "verify", "--cache-dir", store_dir
        )
        assert "clean" in out
        # Orphan a payload half: verify must fail without --prune and
        # recover with it.
        from pathlib import Path

        npz = next(Path(store_dir).glob("*.npz"))
        npz.with_suffix(".json").unlink()
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "verify", "--cache-dir", store_dir])
        assert excinfo.value.code == 1
        capsys.readouterr()
        self._run(
            capsys, "store", "verify", "--cache-dir", store_dir, "--prune"
        )
        self._run(capsys, "store", "verify", "--cache-dir", store_dir)

    def test_fleet_drains_a_queue(self, tmp_path, capsys, monkeypatch):
        from pathlib import Path as _Path

        monkeypatch.setenv(
            "PYTHONPATH",
            str(_Path(__file__).resolve().parents[1] / "src"),
        )
        queue_dir = str(tmp_path / "q")
        store = str(tmp_path / "store")
        self._run(
            capsys, "queue", "init", "--queue-dir", queue_dir,
            *QUEUE_SPEC_FLAGS,
        )
        out = self._run(
            capsys, "queue", "fleet", "--queue-dir", queue_dir,
            "--cache-dir", store, "-n", "1", "--owner-prefix", "clifleet",
        )
        assert "drained" in out
        status = self._run(
            capsys, "queue", "status", "--queue-dir", queue_dir,
            "--cache-dir", store,
        )
        assert "drained" in status

    def test_fleet_validates_count(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["queue", "fleet", "--queue-dir", str(tmp_path / "q"),
                 "--no-cache", "-n", "0"]
            )


class TestAuditCli:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_audited_run_then_report_explain_diff(self, tmp_path, capsys):
        import json as jsonlib

        audit_dir = str(tmp_path / "aud")
        store = str(tmp_path / "store")
        trace = str(tmp_path / "trace.json")
        self._run(
            capsys, "trace", "record", "--out", trace,
            "--scenario", "captive_fixed_80", "--scale", "tiny",
            "--seed", "3", "--cache-dir", store,
        )
        self._run(
            capsys, "trace", "replay", "--trace", trace,
            "--methods", "sqlb", "capacity",
            "--cache-dir", store, "--audit", audit_dir,
        )

        report = self._run(
            capsys, "audit", "report", audit_dir, "--method", "sqlb",
            "--json", str(tmp_path / "report.json"),
        )
        assert "audit report: method=sqlb seed=3" in report
        payload = jsonlib.loads((tmp_path / "report.json").read_text())
        assert payload["method"] == "sqlb"
        assert payload["decisions"] > 0
        # The --json export is deterministic: a double render of the
        # same shard is byte-identical.
        first = (tmp_path / "report.json").read_bytes()
        self._run(
            capsys, "audit", "report", audit_dir, "--method", "sqlb",
            "--json", str(tmp_path / "report.json"),
        )
        assert (tmp_path / "report.json").read_bytes() == first

        explain = self._run(
            capsys, "audit", "explain", audit_dir, "0", "--method", "sqlb"
        )
        assert "decision #0" in explain
        assert "chosen: provider" in explain

        diff = self._run(
            capsys, "audit", "diff", audit_dir, audit_dir,
            "--method-a", "sqlb", "--method-b", "capacity",
            "--json", str(tmp_path / "diff.json"),
        )
        assert "audit diff: sqlb vs capacity" in diff
        diff_payload = jsonlib.loads((tmp_path / "diff.json").read_text())
        assert diff_payload["paired"] > 0
        assert diff_payload["first_divergence"] is not None

    def test_report_on_empty_directory_is_an_error(self, tmp_path):
        (tmp_path / "aud").mkdir()
        with pytest.raises(SystemExit, match="no committed audit shard"):
            main(["audit", "report", str(tmp_path / "aud")])

    def test_ambiguous_directory_demands_method(self, tmp_path, capsys):
        audit_dir = str(tmp_path / "aud")
        store = str(tmp_path / "store")
        trace = str(tmp_path / "trace.json")
        self._run(
            capsys, "trace", "record", "--out", trace,
            "--scenario", "captive_fixed_80", "--scale", "tiny",
            "--seed", "3", "--cache-dir", store,
        )
        self._run(
            capsys, "trace", "replay", "--trace", trace,
            "--methods", "sqlb", "capacity",
            "--cache-dir", store, "--audit", audit_dir,
        )
        with pytest.raises(SystemExit, match="pass --method"):
            main(["audit", "report", audit_dir])
