"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "sqlb"
        assert args.workload == 0.8
        assert not args.autonomous

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "oracle"])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9z"])


class TestCommands:
    def test_methods_lists_paper_methods(self, capsys):
        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for name in ("sqlb (paper)", "capacity (paper)", "mariposa (paper)"):
            assert name in output
        assert "knbest" in output

    def test_run_prints_summary(self, capsys):
        code = main(
            [
                "run",
                "--method",
                "capacity",
                "--duration",
                "60",
                "--workload",
                "0.5",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "method: capacity" in output
        assert "response time" in output

    def test_run_autonomous_reports_departures(self, capsys):
        main(
            [
                "run",
                "--duration",
                "60",
                "--autonomous",
                "--method",
                "sqlb",
            ]
        )
        assert "departures:" in capsys.readouterr().out
