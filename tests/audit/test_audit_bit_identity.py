"""Decision auditing must never perturb simulation numerics.

Same contract (and same frozen goldens) as the telemetry layer: an
audited run draws nothing from any RNG stream and reorders no
arithmetic — the recorder only *reads* the per-query vectors after the
method has chosen, and recomputes scores through the same pure
functions on copies.  A single extra draw or reordered reduction
anywhere in the hot path trips these within a handful of samples.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.audit.recorder import audit_session
from repro.experiments.executor import ExperimentExecutor, SimulationJob
from repro.experiments.store import ResultStore
from repro.simulation.config import DepartureRules, WorkloadSpec, tiny_config
from repro.simulation.engine import run_simulation

#: Frozen in tests/experiments/test_golden.py before telemetry (and
#: audit) existed; duplicated — not imported — so an accidental golden
#: edit cannot silently relax this file too.
PRE_TELEMETRY_SHA256 = {
    ("captive", "sqlb"):
        "ed01bf370eb314688efd21fdc17658306e149634f040aadce6794acd972352f4",
    ("autonomous", "sqlb"):
        "668b18ba87b72be7179d34fce2d2fefaf9507e7deeaa07ca937356f1e3ccea6b",
}


def _fingerprint(result) -> str:
    digest = hashlib.sha256()
    digest.update(result.times().tobytes())
    for name in sorted(result.collector.names):
        digest.update(name.encode())
        digest.update(result.series(name).tobytes())
    return digest.hexdigest()


def _config(label):
    if label == "captive":
        return tiny_config(duration=60.0)
    return tiny_config(
        duration=120.0, workload=WorkloadSpec.fixed(1.0)
    ).with_departures(DepartureRules.autonomous(True))


@pytest.mark.parametrize("label", ["captive", "autonomous"])
@pytest.mark.parametrize("method", ["sqlb", "capacity"])
def test_enabled_and_disabled_runs_are_bit_identical(
    label, method, tmp_path
):
    config = _config(label)
    disabled = run_simulation(config, method, seed=5)
    with audit_session(tmp_path) as audit:
        enabled = run_simulation(config, method, seed=5)
        # The recorder genuinely ran on the enabled side: the run's
        # buffer holds exactly one record per served query.
        manifest_path = audit.commit("f" * 16, method, config)
    assert manifest_path is not None
    import json

    manifest = json.loads(manifest_path.read_text())
    assert manifest["decisions"] == enabled.queries_served
    assert _fingerprint(enabled) == _fingerprint(disabled)


@pytest.mark.parametrize(
    ("label", "method"), sorted(PRE_TELEMETRY_SHA256)
)
def test_audited_run_matches_pre_telemetry_goldens(label, method, tmp_path):
    with audit_session(tmp_path):
        result = run_simulation(_config(label), method, seed=5)
    assert _fingerprint(result) == PRE_TELEMETRY_SHA256[(label, method)]


def test_audited_store_payloads_are_byte_identical(tmp_path):
    """The persisted result halves must not know audit ever ran."""
    config = tiny_config(duration=60.0)
    job = SimulationJob(config, "sqlb", 3)

    plain_store = ResultStore(tmp_path / "plain")
    ExperimentExecutor(store=plain_store).run([job])

    audited_store = ResultStore(tmp_path / "audited")
    with audit_session(tmp_path / "shards"):
        ExperimentExecutor(store=audited_store).run([job])

    plain = sorted(p for p in (tmp_path / "plain").glob("*.npz"))
    audited = sorted(p for p in (tmp_path / "audited").glob("*.npz"))
    assert [p.name for p in plain] == [p.name for p in audited]
    assert plain, "store persisted nothing"
    for left, right in zip(plain, audited):
        assert left.read_bytes() == right.read_bytes(), left.name
    # And the audit shard itself landed where configured, not in the
    # store (store verify pairs *.npz/*.json by stem at its top level).
    assert list((tmp_path / "shards").glob("audit-*.json"))
    assert not list((tmp_path / "audited").glob("audit-*"))
