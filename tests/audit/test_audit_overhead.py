"""Overhead guard: enabled auditing stays within its budget.

Unlike telemetry (counter bumps), the recorder does real per-query
work — a score recompute and a top-K lexsort — so its budget is wider:
an audited run may cost up to 2x an unaudited one on the quick perf
cells.  What this guard actually protects against is the recorder
leaking *out* of its gate: an ungated hook, an accidental flush in the
hot loop, or per-query disk I/O all cost well beyond 2x.  Same
best-of-N + retry structure as the telemetry guard — wall-clock ratios
on shared CI boxes are noisy.
"""

from __future__ import annotations

import time

import pytest

from repro.audit.recorder import audit_session
from repro.experiments.perf import PERF_MATRIX
from repro.simulation.engine import run_simulation

#: Allowed enabled/disabled ratio (see module docstring).
MAX_RATIO = 2.0

ROUNDS = 3
REPEATS = 3


def _best(config, method, audit_dir) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        if audit_dir is not None:
            with audit_session(audit_dir):
                started = time.perf_counter()
                run_simulation(config, method, seed=1)
                elapsed = time.perf_counter() - started
        else:
            started = time.perf_counter()
            run_simulation(config, method, seed=1)
            elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best


@pytest.mark.parametrize(
    "cell", [cell for cell in PERF_MATRIX if cell.quick],
    ids=lambda cell: cell.name,
)
def test_audited_overhead_within_budget(cell, tmp_path):
    config = cell.build()
    # Warm both paths (imports, caches) outside the timed region.
    run_simulation(config, "sqlb", seed=1)
    with audit_session(tmp_path):
        run_simulation(config, "sqlb", seed=1)

    ratios = []
    for _ in range(ROUNDS):
        disabled = _best(config, "sqlb", audit_dir=None)
        enabled = _best(config, "sqlb", audit_dir=tmp_path)
        ratio = enabled / disabled
        ratios.append(ratio)
        if ratio <= MAX_RATIO:
            return
    raise AssertionError(
        f"{cell.name}: audit overhead exceeded {MAX_RATIO:.2f}x in "
        f"every round (ratios: {[f'{r:.3f}' for r in ratios]})"
    )
