"""Read-surface tests: loader, report, explain, diff, anomaly sweep."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.audit.recorder import audit_session
from repro.audit.report import (
    FREEFALL_WINDOW,
    AuditReadError,
    detect_anomalies,
    diff_payload,
    explain_payload,
    find_shards,
    format_diff,
    format_explain,
    format_report,
    load_shard,
    report_payload,
    resolve_shard,
)
from repro.simulation.config import tiny_config
from repro.simulation.engine import run_simulation
from repro.simulation.trace import record_trace, replay_config


@pytest.fixture(scope="module")
def shard_dir(tmp_path_factory):
    """Two shards from replays of one recorded trace (sqlb, capacity)."""
    directory = tmp_path_factory.mktemp("shards")
    config = tiny_config(duration=60.0)
    trace_path = directory / "trace.json"
    record_trace(config, "sqlb", 3, trace_path)
    replay = replay_config(config, trace_path)
    for method in ("sqlb", "capacity"):
        with audit_session(directory) as audit:
            run_simulation(replay, method, seed=3)
            audit.commit(f"{method:0<32.32}", method, replay)
    return directory


class TestLoader:
    def test_find_and_resolve(self, shard_dir):
        manifests = find_shards(shard_dir)
        assert len(manifests) == 2
        shard = resolve_shard(shard_dir, method="sqlb")
        assert shard.manifest["method"] == "sqlb"
        # Bare .npz and manifest paths load the same shard.
        by_npz = load_shard(shard.path.with_suffix(".npz"))
        assert by_npz.manifest == shard.manifest

    def test_ambiguous_directory_requires_method(self, shard_dir):
        with pytest.raises(AuditReadError, match="pass --method"):
            resolve_shard(shard_dir)

    def test_missing_manifest_is_loud(self, tmp_path):
        with pytest.raises(AuditReadError, match="no audit manifest"):
            load_shard(tmp_path / "audit-x-seed1-abc.json")

    def test_tampered_manifest_is_loud(self, shard_dir, tmp_path):
        source = find_shards(shard_dir)[0]
        manifest = json.loads(source.read_text())
        manifest["decisions"] += 1
        target = tmp_path / source.name
        target.write_text(json.dumps(manifest))
        with pytest.raises(AuditReadError, match="digest mismatch"):
            load_shard(target)

    def test_payload_hash_mismatch_is_loud(self, shard_dir, tmp_path):
        source = find_shards(shard_dir)[0]
        target = tmp_path / source.name
        target.write_text(source.read_text())
        (tmp_path / source.with_suffix(".npz").name).write_bytes(b"junk")
        with pytest.raises(AuditReadError, match="sha256"):
            load_shard(target)


class TestReport:
    def test_payload_is_json_safe_and_deterministic(self, shard_dir):
        shard = resolve_shard(shard_dir, method="sqlb")
        payload = report_payload(shard)
        first = json.dumps(payload, sort_keys=True, allow_nan=False)
        second = json.dumps(
            report_payload(resolve_shard(shard_dir, method="sqlb")),
            sort_keys=True,
            allow_nan=False,
        )
        assert first == second

    def test_share_accounting_sums_to_one(self, shard_dir):
        payload = report_payload(resolve_shard(shard_dir, method="sqlb"))
        assert payload["decisions"] > 0
        total = sum(row["share"] for row in payload["providers"])
        assert total == pytest.approx(1.0)
        allocations = sum(
            row["allocations"] for row in payload["providers"]
        )
        assert allocations == payload["decisions"]
        for row in payload["routing"]:
            assert sum(row["providers"]) == row["decisions"]

    def test_sqlb_always_picks_top_rank(self, shard_dir):
        # SQLB is argmax-by-score; every decision should sit at rank 0
        # with zero gap — the recompute matching selection is itself
        # the check that the recorder saw the same vectors.
        payload = report_payload(resolve_shard(shard_dir, method="sqlb"))
        assert payload["top_rank_rate"] == pytest.approx(1.0)
        assert payload["score_gap"]["max"] == pytest.approx(0.0)

    def test_human_rendering_smoke(self, shard_dir):
        payload = report_payload(resolve_shard(shard_dir, method="sqlb"))
        text = format_report(payload)
        assert "audit report: method=sqlb" in text
        assert "routing by class:" in text


class TestExplain:
    def test_explain_matches_columns(self, shard_dir):
        shard = resolve_shard(shard_dir, method="sqlb")
        payload = explain_payload(shard, 0)
        assert payload["index"] == 0
        assert payload["chosen"] == int(shard.arrays["chosen"][0])
        chosen_rows = [r for r in payload["candidates"] if r["chosen"]]
        if payload["chosen_rank"] < len(payload["candidates"]):
            assert chosen_rows and (
                chosen_rows[0]["provider"] == payload["chosen"]
            )
        text = format_explain(payload)
        assert f"decision #0" in text
        assert "chosen: provider" in text

    def test_out_of_range_is_loud(self, shard_dir):
        shard = resolve_shard(shard_dir, method="sqlb")
        with pytest.raises(AuditReadError, match="out of range"):
            explain_payload(shard, 10**9)


class TestDiff:
    def test_same_shard_diffs_clean(self, shard_dir):
        shard = resolve_shard(shard_dir, method="sqlb")
        payload = diff_payload(shard, shard)
        assert payload["disagreements"] == 0
        assert payload["first_divergence"] is None
        assert payload["only_a"] == payload["only_b"] == 0
        assert payload["share_delta"] == []
        assert "agreed on every paired decision" in format_diff(payload)

    def test_replayed_methods_pair_exactly(self, shard_dir):
        a = resolve_shard(shard_dir, method="sqlb")
        b = resolve_shard(shard_dir, method="capacity")
        payload = diff_payload(a, b)
        # Same trace, captive population: every decision pairs.
        assert payload["paired"] == payload["decisions_a"]
        assert payload["paired"] == payload["decisions_b"]
        assert payload["disagreements"] > 0
        first = payload["first_divergence"]
        assert first is not None
        assert first["chosen_a"] != first["chosen_b"]
        # Share deltas cancel: both sides allocate every paired query.
        net = sum(row["delta"] for row in payload["share_delta"])
        assert net == pytest.approx(0.0, abs=1e-12)
        text = format_diff(payload)
        assert "first divergence: decision #" in text

    def test_mismatched_provenance_is_loud(self, shard_dir, tmp_path):
        a = resolve_shard(shard_dir, method="sqlb")
        config = tiny_config(duration=40.0)
        with audit_session(tmp_path) as audit:
            run_simulation(config, "sqlb", seed=9)
            audit.commit("0" * 32, "sqlb", config)
        b = resolve_shard(tmp_path)
        with pytest.raises(AuditReadError, match="same trace"):
            diff_payload(a, b)


def _synthetic(n, chosen, rates, satisfaction=None):
    manifest = {"n_classes": 1}
    arrays = {
        "chosen": np.asarray(chosen, dtype=np.int64),
        "capacity_rates": np.asarray(rates, dtype=float),
        "consumer_satisfaction": (
            np.ones(n) if satisfaction is None else np.asarray(satisfaction)
        ),
    }
    return manifest, arrays


class TestAnomalies:
    def test_balanced_allocation_is_clean(self):
        n = 400
        manifest, arrays = _synthetic(
            n, [i % 4 for i in range(n)], [1.0, 1.0, 1.0, 1.0]
        )
        assert detect_anomalies(manifest, arrays) == []

    def test_starved_provider_is_flagged(self):
        # Provider 3 holds a quarter of the capacity but never wins.
        n = 400
        manifest, arrays = _synthetic(
            n, [i % 3 for i in range(n)], [1.0, 1.0, 1.0, 1.0]
        )
        anomalies = detect_anomalies(manifest, arrays)
        starved = [a for a in anomalies if a["kind"] == "starvation"]
        assert [a["provider"] for a in starved] == [3]
        assert starved[0]["longest_gap"] == n
        assert starved[0]["allocations"] == 0

    def test_zero_capacity_provider_cannot_starve(self):
        n = 400
        manifest, arrays = _synthetic(
            n, [i % 3 for i in range(n)], [1.0, 1.0, 1.0, 0.0]
        )
        assert all(
            a["provider"] != 3
            for a in detect_anomalies(manifest, arrays)
            if a["kind"] == "starvation"
        )

    def test_free_fall_is_flagged_with_extent(self):
        n = 6 * FREEFALL_WINDOW
        # Block means: 1.0, 0.9, …, 0.5 — one monotone run, drop 0.5.
        satisfaction = np.concatenate(
            [
                np.full(FREEFALL_WINDOW, 1.0 - 0.1 * block)
                for block in range(6)
            ]
        )
        manifest, arrays = _synthetic(
            n, [i % 2 for i in range(n)], [1.0, 1.0], satisfaction
        )
        falls = [
            a
            for a in detect_anomalies(manifest, arrays)
            if a["kind"] == "satisfaction-free-fall"
        ]
        assert len(falls) == 1
        assert falls[0]["start_decision"] == 0
        assert falls[0]["end_decision"] == n
        assert falls[0]["drop"] == pytest.approx(0.5)

    def test_shallow_wiggle_not_flagged(self):
        n = 4 * FREEFALL_WINDOW
        satisfaction = np.concatenate(
            [
                np.full(FREEFALL_WINDOW, v)
                for v in (1.0, 0.95, 1.0, 0.95)
            ]
        )
        manifest, arrays = _synthetic(
            n, [i % 2 for i in range(n)], [1.0, 1.0], satisfaction
        )
        assert not any(
            a["kind"] == "satisfaction-free-fall"
            for a in detect_anomalies(manifest, arrays)
        )

    def test_imbalance_is_flagged_both_directions(self):
        # Provider 0 takes everything; 1 has half the capacity.
        n = 200
        manifest, arrays = _synthetic(n, [0] * n, [1.0, 1.0])
        kinds = {
            (a["kind"], a.get("provider"))
            for a in detect_anomalies(manifest, arrays)
        }
        assert ("capacity-imbalance", 0) in kinds
        assert ("capacity-imbalance", 1) in kinds

    def test_short_run_skips_imbalance(self):
        manifest, arrays = _synthetic(10, [0] * 10, [1.0, 1.0])
        assert not any(
            a["kind"] == "capacity-imbalance"
            for a in detect_anomalies(manifest, arrays)
        )
