"""Recorder unit tests: buffering, commit protocol, enable plumbing."""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro.audit import recorder as recorder_module
from repro.audit.recorder import (
    AUDIT_DIR_ENV,
    AUDIT_FORMAT,
    AUDIT_TOP_K,
    DecisionAudit,
    audit_session,
    configure_audit,
    get_audit,
    manifest_digest,
    verify_manifest,
)
from repro.reliability.failpoints import FailpointError, failpoints_session
from repro.simulation.config import tiny_config
from repro.simulation.engine import run_simulation

KEY = "deadbeefdeadbeefdeadbeefdeadbeef"


def _committed(tmp_path, method="sqlb", seed=3, duration=60.0):
    config = tiny_config(duration=duration)
    with audit_session(tmp_path) as audit:
        result = run_simulation(config, method, seed=seed)
        manifest_path = audit.commit(KEY, method, config)
    return config, result, audit, manifest_path


class TestCommit:
    def test_shard_and_manifest_roundtrip(self, tmp_path):
        config, result, audit, manifest_path = _committed(tmp_path)
        assert manifest_path is not None
        manifest = json.loads(manifest_path.read_text())
        assert verify_manifest(manifest)
        assert manifest["format"] == AUDIT_FORMAT
        assert manifest["engine_version"] == "1"
        assert manifest["method"] == "sqlb"
        assert manifest["seed"] == 3
        assert manifest["key"] == KEY
        assert manifest["top_k"] == AUDIT_TOP_K
        assert manifest["decisions"] == result.queries_served
        assert manifest["unserved"] == result.queries_unserved
        assert manifest["n_providers"] == config.n_providers
        assert manifest["n_consumers"] == config.n_consumers

        shard_path = manifest_path.parent / manifest["npz"]
        assert shard_path.name == f"audit-sqlb-seed3-{KEY[:16]}.npz"
        payload = shard_path.read_bytes()
        assert hashlib.sha256(payload).hexdigest() == manifest["npz_sha256"]

        with np.load(shard_path) as arrays:
            n = int(arrays["n_decisions"][0])
            assert n == manifest["decisions"]
            assert arrays["time"].shape == (n,)
            assert arrays["topk_scores"].shape == (n, AUDIT_TOP_K)
            # Times are the issue order; monotone non-decreasing.
            assert np.all(np.diff(arrays["time"]) >= 0)
            # The chosen provider is always the top-K's first entry for
            # a score-maximising method like sqlb with rank 0 picks.
            rank0 = arrays["chosen_rank"] == 0
            assert np.all(
                arrays["chosen"][rank0]
                == arrays["topk_providers"][rank0, 0]
            )

    def test_double_commit_returns_none(self, tmp_path):
        _, _, audit, first = _committed(tmp_path)
        assert first is not None
        assert not audit.pending
        assert audit.commit(KEY, "sqlb", tiny_config(duration=60.0)) is None

    def test_commit_without_run_returns_none(self, tmp_path):
        audit = DecisionAudit(tmp_path)
        assert audit.commit(KEY, "sqlb", tiny_config(duration=60.0)) is None

    def test_digest_detects_tamper(self, tmp_path):
        _, _, _, manifest_path = _committed(tmp_path)
        manifest = json.loads(manifest_path.read_text())
        assert verify_manifest(manifest)
        manifest["decisions"] += 1
        assert not verify_manifest(manifest)
        assert manifest_digest(manifest) != manifest["digest"]


class TestCrashFootprints:
    def test_failpoint_before_shard_leaves_nothing(self, tmp_path):
        config = tiny_config(duration=40.0)
        with audit_session(tmp_path) as audit:
            run_simulation(config, "sqlb", seed=1)
            with failpoints_session("audit.commit.shard:raise:1"):
                with pytest.raises(FailpointError):
                    audit.commit(KEY, "sqlb", config)
        assert list(tmp_path.glob("audit-*")) == []

    def test_failpoint_before_manifest_leaves_orphan_shard(self, tmp_path):
        config = tiny_config(duration=40.0)
        with audit_session(tmp_path) as audit:
            run_simulation(config, "sqlb", seed=1)
            with failpoints_session("audit.commit.manifest:raise:1"):
                with pytest.raises(FailpointError):
                    audit.commit(KEY, "sqlb", config)
        # Exactly the manifest-less-shard footprint gc/fsck age-gate.
        assert list(tmp_path.glob("audit-*.json")) == []
        [shard] = tmp_path.glob("audit-*.npz")
        assert shard.name == f"audit-sqlb-seed1-{KEY[:16]}.npz"


class TestPlumbing:
    @pytest.fixture(autouse=True)
    def _restore_active(self):
        previous = (
            recorder_module._active,
            recorder_module._resolved,
        )
        yield
        recorder_module._active, recorder_module._resolved = previous

    def test_get_audit_resolves_from_environment(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(AUDIT_DIR_ENV, str(tmp_path))
        recorder_module._active = None
        recorder_module._resolved = False
        audit = get_audit()
        assert audit is not None
        assert audit.audit_dir == tmp_path
        assert audit.pid == os.getpid()

    def test_unset_environment_means_disabled(self, monkeypatch):
        monkeypatch.delenv(AUDIT_DIR_ENV, raising=False)
        recorder_module._active = None
        recorder_module._resolved = False
        assert get_audit() is None

    def test_foreign_pid_re_resolves(self, tmp_path, monkeypatch):
        monkeypatch.setenv(AUDIT_DIR_ENV, str(tmp_path))
        inherited = DecisionAudit(tmp_path)
        inherited.pid = inherited.pid + 1  # a forked child's view
        recorder_module._active = inherited
        recorder_module._resolved = True
        fresh = get_audit()
        assert fresh is not inherited
        assert fresh.pid == os.getpid()

    def test_configure_none_disables(self, tmp_path):
        assert configure_audit(tmp_path) is not None
        assert get_audit() is not None
        assert configure_audit(None) is None
        assert get_audit() is None

    def test_record_before_begin_is_a_noop(self, tmp_path):
        audit = DecisionAudit(tmp_path)
        audit.record_unserved()  # must not raise
        assert not audit.pending
