"""Quickstart: score providers by hand, then run a full simulation.

Walks through the paper's machinery at both levels:

1. The scalar formulas (Definitions 7-9, Equation 6) on the paper's
   motivating eWine scenario (Table 1).
2. A complete mediator simulation comparing SQLB with the two baseline
   allocation methods on the scaled environment.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import (
    WorkloadSpec,
    allocate_query,
    consumer_intention,
    omega,
    provider_intention,
    provider_score,
    run_simulation,
    scaled_config,
)

# REPRO_EXAMPLES_SMOKE=1 shrinks the simulation to seconds so CI can
# run every example end-to-end; the printed numbers lose their meaning.
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def part_one_scalar_formulas() -> None:
    """The paper's formulas on a hand-made scenario."""
    print("=" * 68)
    print("Part 1 - the SQLB formulas, by hand")
    print("=" * 68)

    # A consumer balancing its preference for a provider against that
    # provider's reputation (Definition 7).  υ = 0.5 weighs both
    # equally; a consumer with more experience raises υ.
    ci = consumer_intention(preference=0.8, reputation=0.6, upsilon=0.5)
    print(f"consumer intention  (prf=0.8, rep=0.6, υ=0.5): {ci:+.3f}")

    # A provider that likes the query but is half-loaded, judging with
    # a neutral satisfaction of 0.5 (Definition 8, the Figure 2 surface).
    pi = provider_intention(preference=0.7, utilization=0.5, satisfaction=0.5)
    print(f"provider intention  (prf=0.7, Ut=0.5, δs=0.5): {pi:+.3f}")

    # Equation 6 balances whose wishes matter more: here the consumer
    # is happier than the provider, so ω > 0.5 favours the provider.
    w = omega(consumer_satisfaction=0.8, provider_satisfaction=0.4)
    score = provider_score(pi, ci, omega_value=w)
    print(f"omega (δs(c)=0.8, δs(p)=0.4):                  {w:+.3f}")
    print(f"provider score (Definition 9):                 {score:+.3f}")

    # The eWine scenario of Section 1.1 / Table 1: five providers with
    # binary intentions; only p5 is wanted by both sides.
    print("\nTable 1 scenario - ranking by Algorithm 1:")
    names = ["p1", "p2", "p3", "p4", "p5"]
    provider_int = np.array([+1.0, -1.0, +1.0, -1.0, +1.0])
    consumer_int = np.array([-1.0, +1.0, -1.0, +1.0, +1.0])
    allocation = allocate_query(
        provider_intentions=provider_int,
        consumer_intentions=consumer_int,
        consumer_satisfaction=0.5,
        provider_satisfactions=np.full(5, 0.5),
        n_desired=2,
        rng=np.random.default_rng(0),
    )
    ranking = " > ".join(names[i] for i in allocation.ranking)
    chosen = ", ".join(names[i] for i in allocation.selected)
    print(f"  ranking: {ranking}")
    print(f"  eWine's query goes to: {chosen}")


def part_two_full_simulation() -> None:
    """Three allocation methods on the same environment."""
    print()
    print("=" * 68)
    print("Part 2 - a full mediator simulation (captive, 80% workload)")
    print("=" * 68)

    config = scaled_config(
        duration=40.0 if SMOKE else 400.0,
        workload=WorkloadSpec.fixed(0.80),
    )
    header = (
        f"{'method':<10} {'resp.time(s)':>12} {'prov δs(int)':>12} "
        f"{'prov δas(prf)':>13} {'cons δas':>9}"
    )
    print(header)
    for method in ("sqlb", "capacity", "mariposa"):
        result = run_simulation(config, method, seed=42)
        print(
            f"{method:<10} "
            f"{result.response_time_post_warmup:>12.2f} "
            f"{result.series('provider_intention_satisfaction_mean')[-1]:>12.3f} "
            f"{result.series('provider_preference_allocation_satisfaction_mean')[-1]:>13.3f} "
            f"{result.series('consumer_allocation_satisfaction_mean')[-1]:>9.3f}"
        )
    print(
        "\nReading: capacity-based is fastest but punishes providers\n"
        "(allocation satisfaction < 1) and is neutral to consumers;\n"
        "SQLB trades some response time for satisfying both sides."
    )


if __name__ == "__main__":
    part_one_scalar_formulas()
    part_two_full_simulation()
