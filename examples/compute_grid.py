"""Compute-grid scenario: autonomous resource providers under load.

The paper's second motivating scenario (Section 1.1): companies request
computing resources (CPU units) from provider companies through a
mediator, as in the Grid4All project.  Providers are autonomous — if
the mediator chronically dissatisfies, starves, or overloads them, they
take their machines elsewhere.

This example runs the three allocation methods in the *autonomous*
regime at a heavy workload and reports who keeps their grid together:
how many providers and consumers remain, why the leavers left, and what
that does to response times.

Run with::

    python examples/compute_grid.py
"""

from __future__ import annotations

import os
from collections import Counter

from repro import DepartureRules, WorkloadSpec, run_simulation, scaled_config

# REPRO_EXAMPLES_SMOKE=1 shrinks the simulation to seconds so CI can
# run every example end-to-end; the printed numbers lose their meaning.
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def main() -> None:
    config = scaled_config(
        duration=70.0 if SMOKE else 700.0,
        workload=WorkloadSpec.fixed(0.8),
    ).with_departures(DepartureRules.autonomous(include_overutilization=True))

    print("Compute grid: autonomous providers at 80% workload")
    print("=" * 70)
    for method in ("sqlb", "capacity", "mariposa"):
        result = run_simulation(config, method, seed=17)
        providers_left = [
            d for d in result.departures if d.kind == "provider"
        ]
        consumers_left = [
            d for d in result.departures if d.kind == "consumer"
        ]
        reasons = Counter(d.reason for d in providers_left)
        capacity_classes = Counter(
            ("low", "medium", "high")[d.capacity_class]
            for d in providers_left
        )

        print(f"\n--- {method} " + "-" * (62 - len(method)))
        print(
            f"providers retained: "
            f"{config.n_providers - len(providers_left)}/{config.n_providers}"
            f"   consumers retained: "
            f"{config.n_consumers - len(consumers_left)}/{config.n_consumers}"
        )
        if reasons:
            reason_text = ", ".join(
                f"{reason}: {count}" for reason, count in reasons.most_common()
            )
            class_text = ", ".join(
                f"{band}-capacity: {count}"
                for band, count in capacity_classes.most_common()
            )
            print(f"provider departure reasons: {reason_text}")
            print(f"departed provider classes:  {class_text}")
        print(
            f"mean response time (post-warmup): "
            f"{result.response_time_post_warmup:.2f} s"
        )
        print(
            f"queries: issued {result.queries_issued}, "
            f"unserved {result.queries_unserved}"
        )

    print(
        "\nReading: SQLB keeps every consumer and most providers in the\n"
        "grid; the baselines bleed participants — capacity-based through\n"
        "chronic provider dissatisfaction, Mariposa-like through load\n"
        "pathologies on the providers it keeps winning queries for."
    )


if __name__ == "__main__":
    main()
