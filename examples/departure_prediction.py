"""Departure prediction: the satisfaction model as an early warning.

Section 3.3 of the paper lists diagnosis among the model's purposes,
and Section 6.3.1 uses it: from *captive* measurements alone the
authors predict that Capacity based will lose providers to
dissatisfaction and that the baselines will lose consumers — then
verify it by switching autonomy on.

This example replays that reasoning: run each method captive, read the
risk flags off the metrics, then run the same environment autonomous
and compare predictions with realised departures.

Run with::

    python examples/departure_prediction.py
"""

from __future__ import annotations

import os

from repro import DepartureRules, WorkloadSpec, run_simulation, scaled_config
from repro.experiments.prediction import predict_departure_risks

# REPRO_EXAMPLES_SMOKE=1 shrinks the simulation to seconds so CI can
# run every example end-to-end; the printed numbers lose their meaning.
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def main() -> None:
    captive = scaled_config(
        duration=40.0 if SMOKE else 400.0,
        workload=WorkloadSpec.fixed(0.8),
    )
    autonomous = captive.with_departures(DepartureRules.autonomous(True))

    print("Predicting departures from captive metrics (80% workload)")
    print("=" * 70)
    for method in ("sqlb", "capacity", "mariposa"):
        report = predict_departure_risks(
            run_simulation(captive, method, seed=19)
        )
        realised = run_simulation(autonomous, method, seed=19)
        provider_loss = realised.provider_departure_fraction()
        consumer_loss = realised.consumer_departure_fraction()

        flagged = [name for name, on in report.flags().items() if on]
        print(f"\n--- {method} " + "-" * (62 - len(method)))
        print(f"predicted risks: {', '.join(flagged) or 'none'}")
        print(
            "evidence: "
            + ", ".join(
                f"{key}={value:.3f}"
                for key, value in report.evidence.items()
            )
        )
        print(
            f"realised departures: providers {provider_loss:.0%}, "
            f"consumers {consumer_loss:.0%}"
        )

    print(
        "\nReading: the captive metrics alone single out capacity-based\n"
        "allocation for provider dissatisfaction and flag the baselines'\n"
        "consumers as punished — and the autonomous runs then realise\n"
        "exactly those departures, as the paper's Section 6.3.2 does."
    )


if __name__ == "__main__":
    main()
