"""E-marketplace scenario: courier companies with shifting interests.

The paper's Example 1: a courier company promotes a new *international*
shipping service and temporarily prefers international queries over
national ones; once the campaign ends its preferences revert.  This
example models that with two query classes (national / international),
per-query-class provider preferences, and a capability matchmaker
(not every courier ships internationally) — then shows how SQLB routes
around the preference shift while the capacity-based mediator ignores
it entirely.

Run with::

    python examples/emarketplace_shipping.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import MediatorSimulation, WorkloadSpec, scaled_config
from repro.simulation.config import QueryClassSpec
from repro.simulation.matchmaking import CapabilityMatchmaker

NATIONAL, INTERNATIONAL = 0, 1

# REPRO_EXAMPLES_SMOKE=1 shrinks the simulation to seconds so CI can
# run every example end-to-end; the printed numbers lose their meaning.
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def build_config():
    """Two query classes: national (cheap) and international (costly)."""
    return scaled_config(
        n_consumers=30,
        n_providers=60,
        duration=40.0 if SMOKE else 400.0,
        workload=WorkloadSpec.fixed(0.7),
        query_classes=QueryClassSpec(
            costs=(110.0, 170.0), weights=(0.6, 0.4)
        ),
        # One preference draw per (provider, query class): a courier's
        # interest in international shipments is a stable stance, not a
        # per-query coin flip.
        provider_pref_mode="per_query_class",
    )


def run_campaign(method: str, promote_international: bool, seed: int = 7):
    """One marketplace run; optionally simulate the promotion period."""
    config = build_config()
    simulation = MediatorSimulation(config, method, seed=seed)

    # 70 % of couriers also ship internationally; everyone ships
    # nationally.  The matchmaker is sound and complete over this.
    rng = np.random.default_rng(seed)
    international_capable = rng.random(config.n_providers) < 0.7
    capability = np.ones((config.n_providers, 2), dtype=bool)
    capability[:, INTERNATIONAL] = international_capable
    simulation._matchmaker = CapabilityMatchmaker(capability)

    if promote_international:
        # The advertising campaign: international-capable couriers
        # boost their preference for international queries and cool on
        # national ones (Example 1 of the paper).
        table = simulation.provider_prefs._per_class_table
        assert table is not None
        table[international_capable, INTERNATIONAL] = np.clip(
            table[international_capable, INTERNATIONAL] + 0.6, -1.0, 1.0
        )
        table[international_capable, NATIONAL] = np.clip(
            table[international_capable, NATIONAL] - 0.4, -1.0, 1.0
        )

    result = simulation.run()
    international_share = (
        simulation.queues.completed_counts()[international_capable].sum()
        / max(1, simulation.queues.completed_counts().sum())
    )
    return result, float(international_share)


def main() -> None:
    print("E-marketplace: courier companies and an international promo")
    print("=" * 68)
    header = (
        f"{'method':<10} {'promo':<6} {'prov δs(prf)':>12} "
        f"{'intl-capable share':>19} {'resp.time(s)':>13}"
    )
    print(header)
    for method in ("sqlb", "capacity"):
        for promo in (False, True):
            result, share = run_campaign(method, promo)
            satisfaction = result.series(
                "provider_preference_satisfaction_mean"
            )[-1]
            print(
                f"{method:<10} {str(promo):<6} {satisfaction:>12.3f} "
                f"{share:>18.1%} {result.response_time_post_warmup:>13.2f}"
            )
    print(
        "\nReading: under SQLB the promotion changes *what* the\n"
        "international-capable couriers perform — they shed the national\n"
        "queries they now dislike, and their preference-based\n"
        "satisfaction climbs well past the no-promo run.  The\n"
        "capacity-based mediator allocates identically with or without\n"
        "the campaign (same share, same response time): providers'\n"
        "stances simply do not reach it."
    )


if __name__ == "__main__":
    main()
