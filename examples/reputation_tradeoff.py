"""Reputation trade-off: sweeping the consumer's υ parameter.

Definition 7 lets a consumer balance its own preferences against
provider reputation: ``ci = prf^υ · rep^(1-υ)``.  The paper sets υ = 1
in its experiments (pure preferences); this example explores the rest
of the dial.  We build an environment where preference and reputation
*disagree* — the providers consumers like are unreliable — and sweep υ
from 0 (trust reputation only) to 1 (trust own preferences only).

Run with::

    python examples/reputation_tradeoff.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import MediatorSimulation, WorkloadSpec, scaled_config

# REPRO_EXAMPLES_SMOKE=1 shrinks the simulation to seconds so CI can
# run every example end-to-end; the printed numbers lose their meaning.
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")


def run_with_upsilon(upsilon: float, seed: int = 23):
    config = scaled_config(
        n_consumers=20,
        n_providers=40,
        duration=30.0 if SMOKE else 300.0,
        workload=WorkloadSpec.fixed(0.6),
        consumer_intention_mode="formula",  # the literal Definition 7
        upsilon=upsilon,
    )
    simulation = MediatorSimulation(config, "sqlb", seed=seed)

    # Make reputation anti-correlated with popular taste: the
    # high-interest providers are the flaky ones.
    interest = simulation.consumer_prefs.interest_classes
    reputations = np.where(interest == 2, 0.1, 0.9)
    simulation.reputation._values[:] = reputations

    result = simulation.run()
    counts = simulation.queues.completed_counts()
    reputable_share = counts[reputations > 0.5].sum() / counts.sum()
    return result, float(reputable_share)


def main() -> None:
    print("Definition 7: trading preferences for reputation (υ sweep)")
    print("=" * 66)
    print(
        f"{'υ':>5} {'share to reputable':>19} {'cons δs':>9} "
        f"{'resp.time(s)':>13}"
    )
    for upsilon in (0.0, 0.25, 0.5, 0.75, 1.0):
        result, reputable_share = run_with_upsilon(upsilon)
        satisfaction = result.series("consumer_satisfaction_mean")[-1]
        print(
            f"{upsilon:>5.2f} {reputable_share:>18.1%} "
            f"{satisfaction:>9.3f} "
            f"{result.response_time_post_warmup:>13.2f}"
        )
    print(
        "\nReading: υ = 0 routes queries to the reputable-but-unloved\n"
        "providers; υ = 1 chases the consumers' own taste.  Recorded\n"
        "satisfaction is measured against the shown intentions, so it\n"
        "tracks whichever signal the consumer chose to trust."
    )


if __name__ == "__main__":
    main()
